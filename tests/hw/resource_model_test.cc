#include "hw/resource_model.h"

#include <gtest/gtest.h>

namespace swiftspatial::hw {
namespace {

TEST(ResourceModel, ReproducesTable1Points) {
  // The measured Table 1 rows must come back exactly.
  const ResourcePct k1 = ResourceModel::KernelUsage(1);
  EXPECT_DOUBLE_EQ(k1.lut, 0.67);
  EXPECT_DOUBLE_EQ(k1.bram, 2.46);
  const ResourcePct k16 = ResourceModel::KernelUsage(16);
  EXPECT_DOUBLE_EQ(k16.lut, 3.35);
  EXPECT_DOUBLE_EQ(k16.ff, 1.60);
  EXPECT_DOUBLE_EQ(k16.bram, 28.05);
  EXPECT_DOUBLE_EQ(k16.dsp, 1.12);
}

TEST(ResourceModel, ShellPlusKernelMatchesTable1TotalRow) {
  const ResourcePct total = ResourceModel::TotalUsage(16);
  EXPECT_NEAR(total.lut, 14.24, 1e-9);
  EXPECT_NEAR(total.ff, 10.81, 1e-9);
  EXPECT_NEAR(total.bram, 43.01, 1e-9);
  EXPECT_NEAR(total.dsp, 1.23, 1e-9);
}

TEST(ResourceModel, InterpolationMonotonic) {
  double prev = 0;
  for (int units = 1; units <= 32; ++units) {
    const ResourcePct k = ResourceModel::KernelUsage(units);
    EXPECT_GE(k.lut, prev) << units;
    prev = k.lut;
    EXPECT_GT(k.bram, 0);
    EXPECT_GT(k.ff, 0);
  }
}

TEST(ResourceModel, KernelUnder30PercentAt16Units) {
  // §5.6: "an accelerator kernel equipped with 16 join units consumes less
  // than 30% of the total hardware resources" (BRAM is the maximum).
  const ResourcePct k = ResourceModel::KernelUsage(16);
  EXPECT_LT(k.lut, 30.0);
  EXPECT_LT(k.ff, 30.0);
  EXPECT_LT(k.bram, 30.0);
  EXPECT_LT(k.dsp, 30.0);
}

TEST(ResourceModel, AbsoluteCountsScaleWithU250) {
  const ResourceCount abs = ResourceModel::KernelAbsolute(16);
  // 3.35% of 1,728,000 LUTs ~= 57,888.
  EXPECT_NEAR(static_cast<double>(abs.lut), 0.0335 * 1728000, 100);
  // 28.05% of 2,688 BRAMs ~= 754.
  EXPECT_NEAR(static_cast<double>(abs.bram), 0.2805 * 2688, 2);
}

TEST(ResourceModel, BramOptimizationReducesBram) {
  const ResourceCount plain = ResourceModel::KernelAbsolute(4, false);
  const ResourceCount opt = ResourceModel::KernelAbsolute(4, true);
  EXPECT_LT(opt.bram, plain.bram);
  EXPECT_EQ(opt.lut, plain.lut);
}

TEST(ResourceModel, PynqZ2FeasibilityMatchesSection56) {
  // §5.6: one-to-two units fit a PYNQ-Z2 under a conservative 60% budget;
  // with the shift-register FIFO optimisation, up to four.
  const DeviceSpec z2 = ResourceModel::PynqZ2();
  const int plain = ResourceModel::MaxUnitsOn(z2, 0.60, false);
  EXPECT_GE(plain, 1);
  EXPECT_LE(plain, 2);
  const int optimized = ResourceModel::MaxUnitsOn(z2, 0.60, true);
  EXPECT_GE(optimized, plain);
  EXPECT_GE(optimized, 3);
  EXPECT_LE(optimized, 5);
}

TEST(ResourceModel, U250Fits16UnitsEasily) {
  const DeviceSpec u250 = ResourceModel::U250();
  EXPECT_GE(ResourceModel::MaxUnitsOn(u250, 0.60, false), 16);
}

}  // namespace
}  // namespace swiftspatial::hw
