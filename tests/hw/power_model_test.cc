#include "hw/power_model.h"

#include <gtest/gtest.h>

namespace swiftspatial::hw {
namespace {

TEST(PowerModel, ReproducesPaperOperatingPoints) {
  // §5.7's three measured numbers.
  EXPECT_NEAR(PowerModel::FpgaWatts(16), PowerModel::kPaperFpgaWatts, 0.01);
  EXPECT_NEAR(PowerModel::CpuWatts(16, 16), PowerModel::kPaperCpuWatts, 0.01);
  EXPECT_NEAR(PowerModel::GpuWatts(PowerModel::GpuOccupancyForBatch(20000)),
              PowerModel::kPaperGpuWatts, 0.5);
}

TEST(PowerModel, ReproducesPaperRatios) {
  // "6.16x less power" (CPU/FPGA) and "4.04x lower" (GPU/FPGA).
  const double fpga = PowerModel::FpgaWatts(16);
  EXPECT_NEAR(PowerModel::kPaperCpuWatts / fpga, 6.16, 0.01);
  EXPECT_NEAR(PowerModel::kPaperGpuWatts / fpga, 4.04, 0.01);
}

TEST(PowerModel, FpgaScalesWithUnits) {
  EXPECT_LT(PowerModel::FpgaWatts(1), PowerModel::FpgaWatts(16));
  // Static floor dominates at low unit counts.
  EXPECT_GT(PowerModel::FpgaWatts(1), 15.0);
}

TEST(PowerModel, CpuScalesWithThreads) {
  EXPECT_LT(PowerModel::CpuWatts(1, 16), PowerModel::CpuWatts(16, 16));
  // Over-subscription clamps at the peak.
  EXPECT_DOUBLE_EQ(PowerModel::CpuWatts(32, 16), PowerModel::CpuWatts(16, 16));
  // Idle floor.
  EXPECT_NEAR(PowerModel::CpuWatts(0, 16), 60.0, 0.01);
}

TEST(PowerModel, GpuOccupancyClamped) {
  EXPECT_DOUBLE_EQ(PowerModel::GpuOccupancyForBatch(0), 0.0);
  EXPECT_DOUBLE_EQ(PowerModel::GpuOccupancyForBatch(1u << 30), 1.0);
  EXPECT_DOUBLE_EQ(PowerModel::GpuWatts(1.0), 400.0);
  EXPECT_DOUBLE_EQ(PowerModel::GpuWatts(0.0), 55.0);
}

TEST(PowerModel, FpgaAlwaysBelowBusyCpu) {
  for (int units = 1; units <= 16; ++units) {
    EXPECT_LT(PowerModel::FpgaWatts(units), PowerModel::CpuWatts(16, 16));
  }
}

}  // namespace
}  // namespace swiftspatial::hw
