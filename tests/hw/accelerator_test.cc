// End-to-end tests of the simulated accelerator: functional equivalence
// with the software joins, timing sanity, and configuration behaviour.
#include "hw/accelerator.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "grid/hierarchical_partition.h"
#include "join/nested_loop.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"

namespace swiftspatial {
namespace {

Dataset SmallUniform(uint64_t n, uint64_t seed, double edge = 12.0) {
  UniformConfig cfg;
  cfg.map.map_size = 1000.0;
  cfg.count = n;
  cfg.min_edge = 1.0;
  cfg.max_edge = edge;
  cfg.seed = seed;
  return GenerateUniform(cfg);
}

hw::AcceleratorConfig TestConfig(int units) {
  hw::AcceleratorConfig cfg;
  cfg.num_join_units = units;
  return cfg;
}

TEST(AcceleratorSyncTraversal, MatchesSoftwareJoin) {
  const Dataset r = SmallUniform(700, 11);
  const Dataset s = SmallUniform(600, 22);
  BulkLoadOptions bl;
  bl.max_entries = 8;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  JoinResult expected = SyncTraversalDfs(rt, st);
  hw::Accelerator acc(TestConfig(4));
  JoinResult got;
  const auto report = acc.RunSyncTraversal(rt, st, &got);

  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
  EXPECT_EQ(report.num_results, expected.size());
  EXPECT_GT(report.kernel_cycles, 0u);
}

TEST(AcceleratorSyncTraversal, MatchesBruteForce) {
  const Dataset r = SmallUniform(300, 33);
  const Dataset s = SmallUniform(250, 44);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  JoinResult expected = BruteForceJoin(r, s);
  hw::Accelerator acc(TestConfig(8));
  JoinResult got;
  acc.RunSyncTraversal(rt, st, &got);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(AcceleratorSyncTraversal, DifferentTreeHeights) {
  // A large and a tiny dataset produce trees of different heights,
  // exercising the mixed leaf/directory path.
  const Dataset r = SmallUniform(900, 55);
  const Dataset s = SmallUniform(20, 66, /*edge=*/40.0);
  BulkLoadOptions bl;
  bl.max_entries = 8;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);
  ASSERT_NE(rt.height(), st.height());

  JoinResult expected = BruteForceJoin(r, s);
  hw::Accelerator acc(TestConfig(2));
  JoinResult got;
  acc.RunSyncTraversal(rt, st, &got);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(AcceleratorSyncTraversal, MoreUnitsNotSlower) {
  const Dataset r = SmallUniform(1500, 77);
  const Dataset s = SmallUniform(1500, 88);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  hw::Accelerator one(TestConfig(1));
  hw::Accelerator sixteen(TestConfig(16));
  const auto r1 = one.RunSyncTraversal(rt, st);
  const auto r16 = sixteen.RunSyncTraversal(rt, st);
  EXPECT_EQ(r1.num_results, r16.num_results);
  // 16 units should be clearly faster on a compute-heavy workload.
  EXPECT_LT(r16.kernel_cycles, r1.kernel_cycles);
}

TEST(AcceleratorPbsm, MatchesBruteForce) {
  const Dataset r = SmallUniform(800, 99);
  const Dataset s = SmallUniform(700, 111);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 16;
  opt.initial_grid = 8;
  const auto partition = PartitionHierarchical(r, s, opt);

  JoinResult expected = BruteForceJoin(r, s);
  hw::Accelerator acc(TestConfig(4));
  JoinResult got;
  const auto report = acc.RunPbsm(r, s, partition, &got);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
  EXPECT_EQ(report.num_results, expected.size());
}

TEST(AcceleratorPbsm, StaticAndDynamicPoliciesAgree) {
  const Dataset r = SmallUniform(600, 123);
  const Dataset s = SmallUniform(500, 321);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 8;
  const auto partition = PartitionHierarchical(r, s, opt);

  hw::AcceleratorConfig cs = TestConfig(4);
  cs.pbsm_policy = hw::DispatchPolicy::kStatic;
  hw::AcceleratorConfig cd = TestConfig(4);
  cd.pbsm_policy = hw::DispatchPolicy::kDynamic;

  JoinResult a, b;
  hw::Accelerator(cs).RunPbsm(r, s, partition, &a);
  hw::Accelerator(cd).RunPbsm(r, s, partition, &b);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

TEST(AcceleratorReport, TimingBreakdownConsistent) {
  const Dataset r = SmallUniform(400, 5);
  const Dataset s = SmallUniform(400, 6);
  BulkLoadOptions bl;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);
  const auto report = hw::Accelerator(TestConfig(4)).RunSyncTraversal(rt, st);

  EXPECT_GT(report.bytes_to_device, 0u);
  EXPECT_DOUBLE_EQ(
      report.total_seconds,
      report.kernel_seconds + report.host_transfer_seconds +
          report.launch_seconds);
  EXPECT_GT(report.dram.bytes_read, 0u);
  EXPECT_GE(report.dram_utilization, 0.0);
  EXPECT_LE(report.dram_utilization, 1.0);
  EXPECT_EQ(report.unit_busy_cycles.size(), 4u);
  // Levels: root level plus at least one more for a 400-object tree.
  EXPECT_GE(report.levels.size(), 2u);
}

TEST(AcceleratorPbsm, EmptyOverlapProducesNoResults) {
  // Two datasets in disjoint halves of the map.
  UniformConfig ca;
  ca.map.map_size = 400.0;
  ca.count = 100;
  ca.seed = 7;
  Dataset r = GenerateUniform(ca);
  for (Box& b : r.mutable_boxes()) {
    b.min_x = b.min_x / 10;  // squeeze into [0, 40]
    b.max_x = b.max_x / 10;
  }
  UniformConfig cb = ca;
  cb.seed = 8;
  Dataset s = GenerateUniform(cb);
  for (Box& b : s.mutable_boxes()) {
    b.min_x = static_cast<Coord>(b.min_x / 10 + 300);  // [300, 340]
    b.max_x = static_cast<Coord>(b.max_x / 10 + 300);
  }
  const auto partition = PartitionHierarchical(r, s, {});
  hw::Accelerator acc(TestConfig(2));
  JoinResult got;
  const auto report = acc.RunPbsm(r, s, partition, &got);
  EXPECT_EQ(report.num_results, 0u);
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace swiftspatial
