#include "hw/burst_buffer.h"

#include <gtest/gtest.h>

#include <numeric>

namespace swiftspatial::hw {
namespace {

TEST(BurstBuffer, SmallOutputSingleFlush) {
  BurstBuffer bb(4096, 8, /*enabled=*/true);
  EXPECT_EQ(bb.items_per_burst(), 512u);
  const auto chunks = bb.ChunkSizes(100);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], 100u);
}

TEST(BurstBuffer, LargeOutputSplitsAtThreshold) {
  BurstBuffer bb(4096, 8, true);
  const auto chunks = bb.ChunkSizes(1200);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], 512u);
  EXPECT_EQ(chunks[1], 512u);
  EXPECT_EQ(chunks[2], 176u);
  EXPECT_EQ(std::accumulate(chunks.begin(), chunks.end(), 0u), 1200u);
}

TEST(BurstBuffer, ExactMultiple) {
  BurstBuffer bb(4096, 8, true);
  const auto chunks = bb.ChunkSizes(1024);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], 512u);
  EXPECT_EQ(chunks[1], 512u);
}

TEST(BurstBuffer, ZeroItemsNoFlush) {
  BurstBuffer bb(4096, 8, true);
  EXPECT_TRUE(bb.ChunkSizes(0).empty());
  EXPECT_EQ(bb.flushes(), 0u);
}

TEST(BurstBuffer, DisabledEmitsSingleItems) {
  BurstBuffer bb(4096, 8, /*enabled=*/false);
  EXPECT_EQ(bb.items_per_burst(), 1u);
  const auto chunks = bb.ChunkSizes(5);
  EXPECT_EQ(chunks.size(), 5u);
  for (const auto c : chunks) EXPECT_EQ(c, 1u);
}

TEST(BurstBuffer, StatsAccumulate) {
  BurstBuffer bb(4096, 8, true);
  bb.ChunkSizes(600);   // 2 flushes
  bb.ChunkSizes(100);   // 1 flush
  EXPECT_EQ(bb.flushes(), 3u);
  EXPECT_EQ(bb.items_out(), 700u);
}

TEST(BurstBuffer, OddItemSizes) {
  // 24-byte PBSM descriptors: 4096 / 24 = 170 per burst.
  BurstBuffer bb(4096, 24, true);
  EXPECT_EQ(bb.items_per_burst(), 170u);
}

}  // namespace
}  // namespace swiftspatial::hw
