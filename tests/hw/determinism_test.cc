// Simulation determinism and over-cap PBSM coverage: the device model must
// produce bit-identical cycle counts for identical inputs (events are
// FIFO-ordered within a cycle), and the accelerator's block-splitting path
// for over-cap tiles must preserve the join.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/nested_loop.h"
#include "rtree/bulk_load.h"
#include "tests/test_util.h"

namespace swiftspatial::hw {
namespace {

TEST(Determinism, IdenticalRunsIdenticalCycles) {
  const Dataset r = testutil::Skewed(1000, 700);
  const Dataset s = testutil::Uniform(1000, 701);
  BulkLoadOptions bl;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  AcceleratorConfig cfg;
  cfg.num_join_units = 8;
  const auto a = Accelerator(cfg).RunSyncTraversal(rt, st);
  const auto b = Accelerator(cfg).RunSyncTraversal(rt, st);
  EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
  EXPECT_EQ(a.num_results, b.num_results);
  EXPECT_EQ(a.dram.num_reads, b.dram.num_reads);
  EXPECT_EQ(a.dram.row_hits, b.dram.row_hits);
  EXPECT_EQ(a.unit_busy_cycles, b.unit_busy_cycles);
}

TEST(Determinism, PbsmRunsAreDeterministicPerPolicy) {
  const Dataset r = testutil::Uniform(800, 702);
  const Dataset s = testutil::Uniform(800, 703);
  const auto partition = PartitionHierarchical(r, s, {});
  for (const DispatchPolicy policy :
       {DispatchPolicy::kStatic, DispatchPolicy::kDynamic}) {
    AcceleratorConfig cfg;
    cfg.num_join_units = 4;
    cfg.pbsm_policy = policy;
    const auto a = Accelerator(cfg).RunPbsm(r, s, partition);
    const auto b = Accelerator(cfg).RunPbsm(r, s, partition);
    EXPECT_EQ(a.kernel_cycles, b.kernel_cycles)
        << DispatchPolicyToString(policy);
  }
}

TEST(AcceleratorPbsm, OverCapTilesSplitIntoBlockCrossProducts) {
  // Coincident rectangles cannot be split spatially: the partitioner gives
  // up at max_depth and the accelerator must chunk the oversized tile into
  // block pairs (cross products) without losing or duplicating results.
  std::vector<Box> same(60, Box(10, 10, 12, 12));
  const Dataset r("r", same);
  const Dataset s("s", same);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 8;
  opt.max_depth = 4;
  const auto partition = PartitionHierarchical(r, s, opt);
  ASSERT_GT(partition.over_cap_tiles, 0u);

  AcceleratorConfig cfg;
  cfg.num_join_units = 4;
  JoinResult got;
  const auto report = Accelerator(cfg).RunPbsm(r, s, partition, &got);
  EXPECT_EQ(report.num_results, 60u * 60u);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(AcceleratorPbsm, MixedOverAndUnderCapTiles) {
  // A dense clump plus sparse background: some tiles split normally, the
  // clump goes over cap.
  std::vector<Box> boxes(40, Box(50, 50, 51, 51));  // dense clump
  Rng rng(704);
  for (int i = 0; i < 400; ++i) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 990));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 990));
    boxes.push_back(Box(x, y, x + 5, y + 5));
  }
  const Dataset r("r", boxes);
  const Dataset s("s", boxes);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 8;
  opt.max_depth = 5;
  const auto partition = PartitionHierarchical(r, s, opt);

  AcceleratorConfig cfg;
  cfg.num_join_units = 8;
  JoinResult got;
  Accelerator(cfg).RunPbsm(r, s, partition, &got);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

}  // namespace
}  // namespace swiftspatial::hw
