// Simulation determinism and over-cap PBSM coverage: the device model must
// produce bit-identical cycle counts for identical inputs (events are
// FIFO-ordered within a cycle), and the accelerator's block-splitting path
// for over-cap tiles must preserve the join.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "hw/multi_device.h"
#include "join/nested_loop.h"
#include "rtree/bulk_load.h"
#include "tests/test_util.h"

namespace swiftspatial::hw {
namespace {

TEST(Determinism, IdenticalRunsIdenticalCycles) {
  const Dataset r = testutil::Skewed(1000, 700);
  const Dataset s = testutil::Uniform(1000, 701);
  BulkLoadOptions bl;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  AcceleratorConfig cfg;
  cfg.num_join_units = 8;
  const auto a = Accelerator(cfg).RunSyncTraversal(rt, st);
  const auto b = Accelerator(cfg).RunSyncTraversal(rt, st);
  EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
  EXPECT_EQ(a.num_results, b.num_results);
  EXPECT_EQ(a.dram.num_reads, b.dram.num_reads);
  EXPECT_EQ(a.dram.row_hits, b.dram.row_hits);
  EXPECT_EQ(a.unit_busy_cycles, b.unit_busy_cycles);
}

TEST(Determinism, PbsmRunsAreDeterministicPerPolicy) {
  const Dataset r = testutil::Uniform(800, 702);
  const Dataset s = testutil::Uniform(800, 703);
  const auto partition = PartitionHierarchical(r, s, {});
  for (const DispatchPolicy policy :
       {DispatchPolicy::kStatic, DispatchPolicy::kDynamic}) {
    AcceleratorConfig cfg;
    cfg.num_join_units = 4;
    cfg.pbsm_policy = policy;
    const auto a = Accelerator(cfg).RunPbsm(r, s, partition);
    const auto b = Accelerator(cfg).RunPbsm(r, s, partition);
    EXPECT_EQ(a.kernel_cycles, b.kernel_cycles)
        << DispatchPolicyToString(policy);
  }
}

TEST(AcceleratorPbsm, OverCapTilesSplitIntoBlockCrossProducts) {
  // Coincident rectangles cannot be split spatially: the partitioner gives
  // up at max_depth and the accelerator must chunk the oversized tile into
  // block pairs (cross products) without losing or duplicating results.
  std::vector<Box> same(60, Box(10, 10, 12, 12));
  const Dataset r("r", same);
  const Dataset s("s", same);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 8;
  opt.max_depth = 4;
  // One root tile: the coincident clump over-caps every split anyway, and
  // the default 32x32 initial grid would multiply the identical depth-4
  // recursion by 1024 (16.7M simulated block pairs -- minutes under ASan).
  opt.initial_grid = 1;
  const auto partition = PartitionHierarchical(r, s, opt);
  ASSERT_GT(partition.over_cap_tiles, 0u);

  AcceleratorConfig cfg;
  cfg.num_join_units = 4;
  JoinResult got;
  const auto report = Accelerator(cfg).RunPbsm(r, s, partition, &got);
  EXPECT_EQ(report.num_results, 60u * 60u);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

// Multi-device dedup at ULP-colliding grid edges: above 2^24 the float
// lattice steps by 2, so a 16x16 outer grid over an 8-wide extent collapses
// runs of ~4 consecutive tile edges onto the same representable float --
// the [2^24, 2^24+8] edge-collapse regime pinned for pbsm stripes in
// pbsm_test. The outer grid's multi-assignment plus the CloseLastTile
// index-driven dedup convention must still claim every boundary pair exactly
// once across partitions, for both §6 strategies.
TEST(MultiDeviceDedup, UlpCollidedGridEdgesClaimBoundaryPairsOnce) {
  const Coord base = 16777216.0f;  // 2^24
  std::vector<Box> boxes;
  // Points ON the collapsed representable edges (including the extent
  // corners) plus rectangles straddling them.
  for (int i = 0; i <= 4; ++i) {
    const Coord gx = base + static_cast<Coord>(2 * i);
    for (int j = 0; j <= 4; ++j) {
      const Coord gy = base + static_cast<Coord>(2 * j);
      boxes.push_back(Box(gx, gy, gx, gy));
    }
    boxes.push_back(Box(gx, base + 1, gx, base + 3));          // vertical
    boxes.push_back(Box(base + 1, gx, base + 3, gx));          // horizontal
  }
  const Dataset r("ulp_r", std::vector<Box>(boxes));
  const Dataset s("ulp_s", std::move(boxes));
  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_GT(expected.size(), r.size());  // edge-touching pairs exist

  for (const OutOfMemoryStrategy strategy :
       {OutOfMemoryStrategy::kMultipleDevices,
        OutOfMemoryStrategy::kSingleDeviceIterative}) {
    MultiDeviceConfig cfg;
    cfg.device.num_join_units = 2;
    cfg.strategy = strategy;
    // A generous inner cap keeps the (orthogonal) hierarchical splitter
    // from degenerate recursion on the coincident edge points; the outer
    // grid's multi-assignment + dedup is what this test exercises.
    cfg.tile_cap = 16;
    cfg.min_grid = 16;  // forces the collapsed-edge outer grid
    cfg.max_grid = 16;
    JoinResult got;
    auto report = PartitionedJoin(r, s, cfg, &got);
    ASSERT_TRUE(report.ok()) << OutOfMemoryStrategyToString(strategy) << ": "
                             << report.status().ToString();
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
        << OutOfMemoryStrategyToString(strategy) << ": expected "
        << expected.size() << " pairs, got " << got.size()
        << " (double-claimed or dropped boundary pairs)";
  }
}

// Same regime, forced-shard path used by the accel-pbsm-4x engine: a 2x2
// grid whose single interior edge pair sits on collapsed floats.
TEST(MultiDeviceDedup, ForcedCoarseGridOnCollapsedInteriorEdge) {
  const Coord base = 16777216.0f;  // 2^24
  std::vector<Box> boxes;
  for (int i = 0; i <= 8; i += 2) {
    for (int j = 0; j <= 8; j += 2) {
      boxes.push_back(Box(base + static_cast<Coord>(i),
                          base + static_cast<Coord>(j),
                          base + static_cast<Coord>(i),
                          base + static_cast<Coord>(j)));
    }
  }
  const Dataset r("mid_r", std::vector<Box>(boxes));
  const Dataset s("mid_s", std::move(boxes));
  JoinResult expected = BruteForceJoin(r, s);

  MultiDeviceConfig cfg;
  cfg.device.num_join_units = 2;
  cfg.tile_cap = 4;
  cfg.min_grid = 2;
  JoinResult got;
  auto report = PartitionedJoin(r, s, cfg, &got);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->partitions, 2u);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(AcceleratorPbsm, MixedOverAndUnderCapTiles) {
  // A dense clump plus sparse background: some tiles split normally, the
  // clump goes over cap.
  std::vector<Box> boxes(40, Box(50, 50, 51, 51));  // dense clump
  Rng rng(704);
  for (int i = 0; i < 400; ++i) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 990));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 990));
    boxes.push_back(Box(x, y, x + 5, y + 5));
  }
  const Dataset r("r", boxes);
  const Dataset s("s", boxes);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 8;
  opt.max_depth = 5;
  const auto partition = PartitionHierarchical(r, s, opt);

  AcceleratorConfig cfg;
  cfg.num_join_units = 8;
  JoinResult got;
  Accelerator(cfg).RunPbsm(r, s, partition, &got);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

}  // namespace
}  // namespace swiftspatial::hw
