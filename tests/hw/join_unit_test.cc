// Direct tests of one join unit's functional and timing behaviour -- the
// unit-level analogue of the paper's Fig. 13 microbenchmark.
#include "hw/join_unit.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hw/messages.h"

namespace swiftspatial::hw {
namespace {

struct Harness {
  sim::Simulator sim;
  AcceleratorConfig config;
  sim::Fifo<NodePairData> input;
  sim::Fifo<TaskStreamItem> tasks;
  sim::Fifo<ResultStreamItem> results;
  sim::Fifo<DoneToken> done;
  JoinUnit unit;

  Harness()
      : input(&sim, 4),
        tasks(&sim, sim::Fifo<TaskStreamItem>::kUnbounded),
        results(&sim, sim::Fifo<ResultStreamItem>::kUnbounded),
        done(&sim, sim::Fifo<DoneToken>::kUnbounded),
        unit(0, &sim, &config, &input, &tasks, &results, &done) {}

  // Feeds the items plus a finish marker and runs to completion.
  void Feed(std::vector<NodePairData> items) {
    auto feeder = [](sim::Fifo<NodePairData>* in,
                     std::vector<NodePairData> batch) -> sim::Process {
      for (auto& d : batch) co_await in->Push(std::move(d));
      NodePairData fin;
      fin.finish = true;
      co_await in->Push(std::move(fin));
    };
    sim.Spawn(feeder(&input, std::move(items)));
    sim.Spawn(unit.Run());
    sim.Run();
  }
};

NodePairData LeafPair(int rc, int sc, uint64_t seed = 1) {
  Rng rng(seed);
  NodePairData d;
  d.r_leaf = d.s_leaf = true;
  for (int i = 0; i < rc; ++i) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
    d.r_entries.push_back({Box(x, y, x + 5, y + 5), i});
  }
  for (int j = 0; j < sc; ++j) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
    d.s_entries.push_back({Box(x, y, x + 5, y + 5), 1000 + j});
  }
  return d;
}

TEST(JoinUnit, LeafPairEmitsCorrectResults) {
  Harness h;
  NodePairData d = LeafPair(8, 8);
  // Expected results by direct evaluation.
  std::size_t expected = 0;
  for (const auto& re : d.r_entries) {
    for (const auto& se : d.s_entries) {
      if (Intersects(re.box, se.box)) ++expected;
    }
  }
  h.Feed({d});
  EXPECT_EQ(h.unit.results_emitted(), expected);
  EXPECT_EQ(h.unit.tasks_joined(), 1u);
  EXPECT_EQ(h.unit.predicate_evaluations(), 64u);
  EXPECT_EQ(h.done.size(), 1u);
}

TEST(JoinUnit, OnePredicatePerCycleSteadyState) {
  // The paper's headline unit property: for node size n, the join takes
  // ~n^2 cycles, i.e. cycles/predicate -> 1 for medium nodes (Fig. 13).
  for (int n : {8, 16, 32, 64}) {
    Harness h;
    h.Feed({LeafPair(n, n, 7)});
    const double cycles = static_cast<double>(h.sim.now());
    const double predicates = static_cast<double>(n) * n;
    const double per_predicate = cycles / predicates;
    EXPECT_GE(per_predicate, 1.0) << "n=" << n;
    // Load + pipeline overhead amortises away for larger nodes.
    const double bound = 1.0 + (static_cast<double>(n) + 5.0) / predicates;
    EXPECT_LE(per_predicate, bound + 0.05) << "n=" << n;
  }
}

TEST(JoinUnit, DirectoryPairEmitsTasks) {
  Harness h;
  // Directory entries are large child MBRs; make them overlap for certain.
  NodePairData d;
  d.r_leaf = d.s_leaf = false;
  for (int i = 0; i < 4; ++i) {
    d.r_entries.push_back(
        {Box(static_cast<Coord>(10 * i), 0, static_cast<Coord>(10 * i + 30),
             50),
         i});
    d.s_entries.push_back(
        {Box(static_cast<Coord>(10 * i + 5), 10,
             static_cast<Coord>(10 * i + 35), 60),
         100 + i});
  }
  h.Feed({d});
  EXPECT_EQ(h.unit.results_emitted(), 0u);
  EXPECT_GT(h.unit.intermediate_pairs(), 0u);
  EXPECT_GE(h.tasks.size(), 1u);
  EXPECT_EQ(h.results.size(), 0u);
}

TEST(JoinUnit, MixedPairKeepsLeafFixed) {
  Harness h;
  NodePairData d = LeafPair(4, 6);
  d.r_leaf = true;
  d.s_leaf = false;
  d.r_index = 99;
  h.Feed({d});
  // Only the directory side is enumerated: sc predicates.
  EXPECT_EQ(h.unit.predicate_evaluations(), 6u);
  TaskStreamItem item;
  bool got_any = false;
  while (h.tasks.TryPop(&item)) {
    for (const NodePairTask& t : item.tasks) {
      EXPECT_EQ(t.r, 99);  // leaf index propagated
      got_any = true;
    }
  }
  EXPECT_TRUE(got_any);
}

TEST(JoinUnit, PbsmModeAppliesDedupRule) {
  Harness h;
  NodePairData d;
  d.pbsm = true;
  d.r_leaf = d.s_leaf = true;
  d.tile = Box(0, 0, 10, 10);
  // Pair intersecting inside the tile: kept.
  d.r_entries.push_back({Box(1, 1, 3, 3), 0});
  d.s_entries.push_back({Box(2, 2, 4, 4), 0});
  // Pair whose reference point (12, 12) lies outside the tile: dropped.
  d.r_entries.push_back({Box(12, 12, 14, 14), 1});
  d.s_entries.push_back({Box(12, 12, 15, 15), 1});
  h.Feed({d});
  EXPECT_EQ(h.unit.results_emitted(), 1u);
}

TEST(JoinUnit, RespectsDataReadyTime) {
  Harness h;
  NodePairData d = LeafPair(2, 2);
  d.ready_at = 500;  // DRAM data lands late
  h.Feed({d});
  EXPECT_GE(h.sim.now(), 500u);
}

TEST(JoinUnit, LargeOutputSplitsIntoBursts) {
  Harness h;
  // All-overlapping 64x64 leaf join: 4096 results = 32 KB > one 4 KB burst.
  NodePairData d;
  d.r_leaf = d.s_leaf = true;
  for (int i = 0; i < 64; ++i) {
    d.r_entries.push_back({Box(0, 0, 10, 10), i});
    d.s_entries.push_back({Box(5, 5, 15, 15), i});
  }
  h.Feed({d});
  EXPECT_EQ(h.unit.results_emitted(), 4096u);
  EXPECT_EQ(h.results.size(), 8u);  // 4096 pairs / 512 per burst
}

TEST(JoinUnit, ProcessesQueueOfTasksSerially) {
  Harness h;
  std::vector<NodePairData> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(LeafPair(8, 8, 100 + i));
  h.Feed(batch);
  EXPECT_EQ(h.unit.tasks_joined(), 10u);
  EXPECT_EQ(h.done.size(), 10u);
  // Serial lower bound: 10 tasks x (8 load + 64 join + 3 pipeline).
  EXPECT_GE(h.sim.now(), 10u * (8 + 64 + 3));
}

}  // namespace
}  // namespace swiftspatial::hw
