#include "hw/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace swiftspatial::hw::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&order] { order.push_back(3); });
  sim.Schedule(10, [&order] { order.push_back(1); });
  sim.Schedule(20, [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameCycleEventsFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  Cycle inner_time = 0;
  sim.Schedule(10, [&sim, &inner_time] {
    sim.Schedule(5, [&sim, &inner_time] { inner_time = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 15u);
}

TEST(Simulator, ProcessDelays) {
  Simulator sim;
  std::vector<Cycle> stamps;
  auto proc = [](Simulator* s, std::vector<Cycle>* out) -> Process {
    out->push_back(s->now());
    co_await s->Delay(7);
    out->push_back(s->now());
    co_await s->Delay(3);
    out->push_back(s->now());
  };
  sim.Spawn(proc(&sim, &stamps));
  sim.Run();
  EXPECT_EQ(stamps, (std::vector<Cycle>{0, 7, 10}));
}

TEST(Simulator, WaitUntilPastIsImmediate) {
  Simulator sim;
  Cycle when = 999;
  auto proc = [](Simulator* s, Cycle* out) -> Process {
    co_await s->Delay(20);
    co_await s->WaitUntil(5);  // already past: no extra delay
    *out = s->now();
  };
  sim.Spawn(proc(&sim, &when));
  sim.Run();
  EXPECT_EQ(when, 20u);
}

TEST(Simulator, TwoProcessesInterleave) {
  Simulator sim;
  std::vector<std::pair<int, Cycle>> log;
  auto proc = [](Simulator* s, int id, Cycle step,
                 std::vector<std::pair<int, Cycle>>* out) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await s->Delay(step);
      out->push_back({id, s->now()});
    }
  };
  sim.Spawn(proc(&sim, 1, 10, &log));
  sim.Spawn(proc(&sim, 2, 15, &log));
  sim.Run();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], (std::pair<int, Cycle>{1, 10}));
  EXPECT_EQ(log[1], (std::pair<int, Cycle>{2, 15}));
  EXPECT_EQ(log[2], (std::pair<int, Cycle>{1, 20}));
  EXPECT_EQ(log[5], (std::pair<int, Cycle>{2, 45}));
}

}  // namespace
}  // namespace swiftspatial::hw::sim
