// Structured logging mechanics: runtime level gate (including that the
// SWIFT_LOG macro never evaluates arguments for filtered records),
// thread-local trace binding so log lines join span trees, drop-oldest
// ring accounting at capacity, the two sink formats, and a multi-writer
// storm the CI TSan job leans on.
#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace swiftspatial::obs {
namespace {

#ifdef SWIFTSPATIAL_OBS_OFF
TEST(LogTest, CompiledOutLoggerIsInert) {
  Logger logger(8);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kError));
  { LogEvent(&logger, LogLevel::kError, "test", "never stored").With("k", 1); }
  EXPECT_EQ(logger.emitted(), 0u);
  EXPECT_EQ(logger.size(), 0u);
  // The macro's else-branch must still be unreachable-but-compilable.
  SWIFT_LOG(Error, "test", "dead branch").With("k", 1);
}
#else

LogRecord MakeRecord(LogLevel level, std::string message) {
  LogRecord r;
  r.level = level;
  r.component = "test";
  r.message = std::move(message);
  return r;
}

TEST(LogTest, LevelGateFiltersBelowThreshold) {
  Logger logger(8);
  EXPECT_EQ(logger.min_level(), LogLevel::kInfo);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kDebug));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kError));

  logger.set_min_level(LogLevel::kError);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kWarn));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kError));

  logger.set_min_level(LogLevel::kDebug);
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kDebug));
}

TEST(LogTest, MacroSkipsArgumentEvaluationWhenFiltered) {
  Logger& global = Logger::Global();
  const LogLevel saved = global.min_level();
  const uint64_t emitted_before = global.emitted();

  global.set_min_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("value");
  };
  SWIFT_LOG(Debug, "test", expensive()).With("k", expensive());
  EXPECT_EQ(evaluations, 0) << "filtered record must not evaluate arguments";
  EXPECT_EQ(global.emitted(), emitted_before);

  SWIFT_LOG(Error, "test", expensive()).With("k", expensive());
  EXPECT_EQ(evaluations, 2);
  EXPECT_EQ(global.emitted(), emitted_before + 1);

  global.set_min_level(saved);
}

TEST(LogTest, MacroNestsInUnbracedIfElse) {
  Logger& global = Logger::Global();
  const LogLevel saved = global.min_level();
  global.set_min_level(LogLevel::kError);
  // Must bind to the enclosing if, not steal the else.
  bool took_else = false;
  if (false)
    SWIFT_LOG(Error, "test", "then branch");
  else
    took_else = true;
  EXPECT_TRUE(took_else);
  global.set_min_level(saved);
}

TEST(LogTest, RecordsCarryFieldsAndTimestamps) {
  Logger logger(8);
  {
    LogEvent(&logger, LogLevel::kWarn, "service", "queue full")
        .With("tenant", "a")
        .With("pending", 16)
        .With("wait", 0.25)
        .With("degraded", true);
  }
  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& r = records[0];
  EXPECT_EQ(r.level, LogLevel::kWarn);
  EXPECT_EQ(r.component, "service");
  EXPECT_EQ(r.message, "queue full");
  EXPECT_GT(r.ts_seconds, 0.0);
  ASSERT_EQ(r.fields.size(), 4u);
  EXPECT_EQ(r.fields[0], (std::pair<std::string, std::string>("tenant", "a")));
  EXPECT_EQ(r.fields[1].second, "16");
  EXPECT_EQ(r.fields[2].second, "0.25");
  EXPECT_EQ(r.fields[3].second, "true");
}

TEST(LogTest, ScopedLogTraceBindsAndRestores) {
  Logger logger(8);
  EXPECT_EQ(CurrentLogTrace().trace_id, 0u);
  {
    ScopedLogTrace outer(7, 9);
    EXPECT_EQ(CurrentLogTrace().trace_id, 7u);
    EXPECT_EQ(CurrentLogTrace().span_id, 9u);
    logger.Log(MakeRecord(LogLevel::kInfo, "outer"));
    {
      ScopedLogTrace inner(7, 11);
      logger.Log(MakeRecord(LogLevel::kInfo, "inner"));
    }
    // Inner scope restored the outer binding, not cleared it.
    EXPECT_EQ(CurrentLogTrace().span_id, 9u);
    logger.Log(MakeRecord(LogLevel::kInfo, "outer again"));
  }
  EXPECT_EQ(CurrentLogTrace().trace_id, 0u);
  logger.Log(MakeRecord(LogLevel::kInfo, "unbound"));

  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].span_id, 9u);
  EXPECT_EQ(records[1].span_id, 11u);
  EXPECT_EQ(records[2].span_id, 9u);
  EXPECT_EQ(records[3].trace_id, 0u);
  EXPECT_EQ(records[3].span_id, 0u);
}

TEST(LogTest, BindingDoesNotOverrideExplicitIds) {
  Logger logger(8);
  ScopedLogTrace bind(7, 9);
  LogRecord r = MakeRecord(LogLevel::kInfo, "explicit");
  r.trace_id = 100;
  r.span_id = 200;
  logger.Log(std::move(r));
  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, 100u);
  EXPECT_EQ(records[0].span_id, 200u);
}

TEST(LogTest, RingDropsOldestAndCountsIt) {
  Logger logger(4);
  EXPECT_EQ(logger.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    logger.Log(MakeRecord(LogLevel::kInfo, "m" + std::to_string(i)));
  }
  EXPECT_EQ(logger.size(), 4u);
  EXPECT_EQ(logger.emitted(), 10u);
  EXPECT_EQ(logger.dropped(), 6u);
  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // The newest records survive.
  EXPECT_EQ(records.front().message, "m6");
  EXPECT_EQ(records.back().message, "m9");

  logger.Clear();
  EXPECT_EQ(logger.size(), 0u);
  // Clear drops the buffer, not the accounting.
  EXPECT_EQ(logger.emitted(), 10u);
  EXPECT_EQ(logger.dropped(), 6u);
}

TEST(LogTest, KeyValueFormatQuotesAndEscapes) {
  LogRecord r = MakeRecord(LogLevel::kWarn, "queue \"full\"");
  r.ts_seconds = 1.5;
  r.trace_id = 7;
  r.span_id = 9;
  r.fields = {{"tenant", "team a"}, {"pending", "16"}};
  const std::string line = Logger::FormatKeyValue(r);
  EXPECT_NE(line.find("ts=1.500000"), std::string::npos) << line;
  EXPECT_NE(line.find("level=warn"), std::string::npos) << line;
  EXPECT_NE(line.find("component=test"), std::string::npos) << line;
  EXPECT_NE(line.find("trace=7 span=9"), std::string::npos) << line;
  EXPECT_NE(line.find("msg=\"queue \\\"full\\\"\""), std::string::npos) << line;
  // Values with spaces are quoted; bare numerics are not.
  EXPECT_NE(line.find("tenant=\"team a\""), std::string::npos) << line;
  EXPECT_NE(line.find("pending=16"), std::string::npos) << line;

  // Untraced records omit the trace/span keys entirely.
  r.trace_id = 0;
  r.span_id = 0;
  EXPECT_EQ(Logger::FormatKeyValue(r).find("trace="), std::string::npos);
}

TEST(LogTest, JsonLineFormatIsOneObject) {
  LogRecord r = MakeRecord(LogLevel::kError, "bad\nthing");
  r.ts_seconds = 2.0;
  r.fields = {{"what", "a \"b\""}};
  const std::string line = Logger::FormatJsonLine(r);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"bad\\nthing\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"what\":\"a \\\"b\\\"\""), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "JSON lines stay one line";
}

TEST(LogTest, StreamSinkMirrorsRecords) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  Logger logger(8);
  logger.SetStreamSink(tmp, Logger::SinkFormat::kKeyValue);
  logger.Log(MakeRecord(LogLevel::kInfo, "to sink"));
  logger.SetStreamSink(nullptr);
  logger.Log(MakeRecord(LogLevel::kInfo, "ring only"));

  std::fflush(tmp);
  std::rewind(tmp);
  char buf[512] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
  std::fclose(tmp);
  const std::string contents(buf, n);
  EXPECT_NE(contents.find("msg=\"to sink\""), std::string::npos) << contents;
  EXPECT_EQ(contents.find("ring only"), std::string::npos)
      << "records after SetStreamSink(nullptr) must not hit the stream";
  EXPECT_EQ(logger.size(), 2u);
}

// Eight concurrent writers hammer a deliberately tiny ring: exercises the
// ring lock and the atomic accounting under contention (the CI TSan job
// runs this test); the invariant emitted == buffered + dropped must hold
// exactly once the writers join.
TEST(LogTest, ConcurrentWriterStormKeepsAccountingExact) {
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 500;
  Logger logger(64);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&logger, w] {
      ScopedLogTrace bind(static_cast<uint64_t>(w + 1), 1);
      for (int i = 0; i < kPerWriter; ++i) {
        LogEvent(&logger, LogLevel::kInfo, "storm", "write")
            .With("writer", w)
            .With("i", i);
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(logger.emitted(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(logger.size(), logger.capacity());
  EXPECT_EQ(logger.emitted(), logger.dropped() + logger.size());
  // Every surviving record carries its writer's trace binding.
  for (const LogRecord& r : logger.Snapshot()) {
    EXPECT_GE(r.trace_id, 1u);
    EXPECT_LE(r.trace_id, static_cast<uint64_t>(kWriters));
  }
}

#endif  // SWIFTSPATIAL_OBS_OFF

}  // namespace
}  // namespace swiftspatial::obs
