// Per-request resource accounting: accumulator arithmetic under concurrent
// writers, the thread-CPU clock, and the end-to-end property the layer
// exists for -- a multi-threaded TaskGraph fan-out reports MORE cpu_seconds
// than wall time (work really ran in parallel) while a single-threaded run
// reports roughly wall time.
#include "obs/resource.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "exec/task_graph.h"

namespace swiftspatial::obs {
namespace {

// Busy work that the optimizer cannot elide and that burns thread CPU (no
// sleeping -- sleeps accrue wall time but not CLOCK_THREAD_CPUTIME_ID).
uint64_t BurnCpu(double seconds) {
  const double start = ThreadCpuSeconds();
  volatile uint64_t acc = 1;
  while (ThreadCpuSeconds() - start < seconds) {
    for (int i = 0; i < 1000; ++i) acc = acc * 2862933555777941757ULL + 3037ULL;
  }
  return acc;
}

TEST(ResourceTest, AccumulatorSumsAllFields) {
  ResourceAccumulator acc;
  acc.AddCpuSeconds(0.5);
  acc.AddCpuSeconds(0.25);
  acc.AddQueueWaitSeconds(0.125);
  acc.SetWallSeconds(2.0);
  acc.AddTasks(3);
  acc.AddChunk(/*pairs=*/10, /*bytes=*/80);
  acc.AddChunk(/*pairs=*/5, /*bytes=*/40);
  acc.AddRetries(2);

  const ResourceUsage u = acc.Snapshot();
#ifdef SWIFTSPATIAL_OBS_OFF
  // Compiled out: every mutator is an empty body.
  EXPECT_EQ(u.cpu_seconds, 0.0);
  EXPECT_EQ(u.tasks, 0u);
  EXPECT_EQ(u.pairs, 0u);
#else
  EXPECT_DOUBLE_EQ(u.cpu_seconds, 0.75);
  EXPECT_DOUBLE_EQ(u.queue_wait_seconds, 0.125);
  EXPECT_DOUBLE_EQ(u.wall_seconds, 2.0);
  EXPECT_EQ(u.tasks, 3u);
  EXPECT_EQ(u.chunks, 2u);
  EXPECT_EQ(u.pairs, 15u);
  EXPECT_EQ(u.bytes, 120u);
  EXPECT_EQ(u.retries, 2u);
#endif
}

#ifndef SWIFTSPATIAL_OBS_OFF

TEST(ResourceTest, ConcurrentAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  ResourceAccumulator acc;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc] {
      for (int i = 0; i < kPerThread; ++i) {
        acc.AddCpuSeconds(0.001);
        acc.AddTasks(1);
        acc.AddChunk(2, 16);
      }
    });
  }
  for (auto& t : threads) t.join();
  const ResourceUsage u = acc.Snapshot();
  EXPECT_EQ(u.tasks, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(u.chunks, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(u.pairs, 2u * kThreads * kPerThread);
  EXPECT_EQ(u.bytes, 16u * kThreads * kPerThread);
  // The CAS loop on the double must not lose increments either.
  EXPECT_NEAR(u.cpu_seconds, 0.001 * kThreads * kPerThread, 1e-6);
}

TEST(ResourceTest, ThreadCpuClockAdvancesWithWorkNotSleep) {
  const double before = ThreadCpuSeconds();
  BurnCpu(0.02);
  const double after_work = ThreadCpuSeconds();
  EXPECT_GE(after_work - before, 0.02);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double after_sleep = ThreadCpuSeconds();
  // Sleeping burns (almost) no thread CPU.
  EXPECT_LT(after_sleep - after_work, 0.02);
}

// The headline property: fan the same total work out over 4 workers and
// the accumulator's cpu_seconds exceeds wall time, because the CPU cost
// was paid on several cores at once. This is what distinguishes "the
// request was expensive" from "the request waited around".
TEST(ResourceTest, TaskGraphFanOutReportsCpuAboveWall) {
  constexpr int kTasks = 8;
  constexpr double kBurnPerTask = 0.05;
  ThreadPool pool(4);
  ResourceAccumulator acc;
  Stopwatch wall;
  {
    exec::TaskGraph graph(&pool, {}, {}, &acc);
    for (int i = 0; i < kTasks; ++i) {
      graph.Add([] { BurnCpu(kBurnPerTask); });
    }
    graph.Wait();
  }
  const double wall_seconds = wall.ElapsedSeconds();
  const ResourceUsage u = acc.Snapshot();

  EXPECT_EQ(u.tasks, static_cast<uint64_t>(kTasks));
  EXPECT_GE(u.queue_wait_seconds, 0.0);
  // All 8 bursts are accounted, whichever worker ran them.
  EXPECT_GE(u.cpu_seconds, kTasks * kBurnPerTask);
  // 8 tasks on 4 workers: CPU cost strictly exceeds elapsed wall time --
  // but only when the machine really has cores to run them on. On a
  // single-core box the workers time-slice and cpu ~ wall, so the ratio
  // assertion is meaningless there. Margins are generous (1.5x on >= 4
  // cores) to tolerate scheduler noise on loaded CI machines.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    EXPECT_GT(u.cpu_seconds, wall_seconds * 1.5)
        << "cpu=" << u.cpu_seconds << " wall=" << wall_seconds;
  } else if (cores >= 2) {
    EXPECT_GT(u.cpu_seconds, wall_seconds * 1.2)
        << "cpu=" << u.cpu_seconds << " wall=" << wall_seconds;
  }
}

TEST(ResourceTest, SingleThreadedGraphReportsCpuNearWall) {
  constexpr int kTasks = 4;
  constexpr double kBurnPerTask = 0.03;
  ThreadPool pool(1);
  ResourceAccumulator acc;
  Stopwatch wall;
  {
    exec::TaskGraph graph(&pool, {}, {}, &acc);
    for (int i = 0; i < kTasks; ++i) {
      graph.Add([] { BurnCpu(kBurnPerTask); });
    }
    graph.Wait();
  }
  const double wall_seconds = wall.ElapsedSeconds();
  const ResourceUsage u = acc.Snapshot();

  EXPECT_EQ(u.tasks, static_cast<uint64_t>(kTasks));
  EXPECT_GE(u.cpu_seconds, kTasks * kBurnPerTask);
  // One worker: CPU time cannot meaningfully exceed elapsed wall time.
  EXPECT_LE(u.cpu_seconds, wall_seconds * 1.25)
      << "cpu=" << u.cpu_seconds << " wall=" << wall_seconds;
}

TEST(ResourceTest, UntrackedGraphPaysNothing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  exec::TaskGraph graph(&pool);  // no accumulator
  for (int i = 0; i < 4; ++i) {
    graph.Add([&ran] { ran.fetch_add(1); });
  }
  graph.Wait();
  EXPECT_EQ(ran.load(), 4);
}

#endif  // SWIFTSPATIAL_OBS_OFF

}  // namespace
}  // namespace swiftspatial::obs
