// MetricsRegistry contract: stable handles, label canonicalization,
// exposition shape, the runtime kill switch, and -- the part that justifies
// the lock-free design -- exact counts under N threads hammering shared
// handles while a reader renders expositions concurrently.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace swiftspatial::obs {
namespace {

TEST(MetricsRegistryTest, HandlesAreStableAndDeduplicated) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("swiftspatial_obs_handles_total");
  Counter* b = reg.GetCounter("swiftspatial_obs_handles_total");
  EXPECT_EQ(a, b);
  Counter* labelled =
      reg.GetCounter("swiftspatial_obs_handles_total", {{"k", "v"}});
  EXPECT_NE(a, labelled);
  // Label order must not matter: the registry canonicalizes by key.
  Counter* xy = reg.GetCounter("swiftspatial_obs_multi_total",
                               {{"x", "1"}, {"y", "2"}});
  Counter* yx = reg.GetCounter("swiftspatial_obs_multi_total",
                               {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(xy, yx);
  EXPECT_EQ(reg.family_count(), 2u);
}

TEST(MetricsRegistryTest, CounterGaugeHistogramValues) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("swiftspatial_obs_events_total");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);

  Gauge* g = reg.GetGauge("swiftspatial_obs_depth");
  g->Set(3.5);
  g->Add(-1.25);
  EXPECT_DOUBLE_EQ(g->value(), 2.25);

  Histogram* h = reg.GetHistogram("swiftspatial_obs_latency_seconds", {},
                                  {0.1, 1.0, 10.0});
  h->Observe(0.05);   // bucket 0 (le 0.1)
  h->Observe(0.5);    // bucket 1 (le 1)
  h->Observe(0.5);    // bucket 1
  h->Observe(100.0);  // +Inf overflow
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 101.05);
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 0u);
  EXPECT_EQ(h->bucket_count(3), 1u);  // +Inf
}

TEST(MetricsRegistryTest, RuntimeKillSwitchStopsMutations) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("swiftspatial_obs_gated_total");
  c->Increment();
  reg.set_enabled(false);
  c->Increment(100);
  EXPECT_EQ(c->value(), 1u);
  reg.set_enabled(true);
  c->Increment();
  EXPECT_EQ(c->value(), 2u);
}

TEST(MetricsRegistryTest, TextExpositionShape) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  MetricsRegistry reg;
  reg.GetCounter("swiftspatial_obs_reqs_total", {{"tenant", "a"}},
                 "Requests served")
      ->Increment(3);
  reg.GetGauge("swiftspatial_obs_pending")->Set(2);
  Histogram* h =
      reg.GetHistogram("swiftspatial_obs_wait_seconds", {}, {0.5, 5.0});
  h->Observe(0.1);
  h->Observe(1.0);
  const std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# HELP swiftspatial_obs_reqs_total Requests served"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE swiftspatial_obs_reqs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("swiftspatial_obs_reqs_total{tenant=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE swiftspatial_obs_pending gauge"),
            std::string::npos);
  EXPECT_NE(text.find("swiftspatial_obs_pending 2"), std::string::npos);
  // Histogram: cumulative le buckets, +Inf equals _count.
  EXPECT_NE(text.find("swiftspatial_obs_wait_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("swiftspatial_obs_wait_seconds_bucket{le=\"5\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("swiftspatial_obs_wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("swiftspatial_obs_wait_seconds_count 2"),
            std::string::npos);

  const std::string json = reg.JsonSnapshot();
  EXPECT_NE(json.find("\"swiftspatial_obs_reqs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"a\""), std::string::npos);
}

// Parses every value of `name` out of successive expositions and checks the
// series never decreases -- the monotonicity contract counters keep even
// while writers are mid-storm.
uint64_t ParseCounter(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  return static_cast<uint64_t>(
      std::stoull(text.substr(pos + needle.size())));
}

TEST(MetricsRegistryTest, ConcurrentHandleHammerIsExact) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  Counter* c = reg.GetCounter("swiftspatial_obs_storm_total");
  Histogram* h =
      reg.GetHistogram("swiftspatial_obs_storm_seconds", {}, {1.0, 2.0});
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, c, h, t] {
      // Half the threads also resolve handles concurrently, exercising
      // registration against the hot path.
      Counter* mine =
          t % 2 == 0
              ? reg.GetCounter("swiftspatial_obs_storm_total")
              : c;
      for (int i = 0; i < kOpsPerThread; ++i) {
        mine->Increment();
        h->Observe(1.5);
      }
    });
  }
  // Reader: expositions during the storm stay well-formed and monotonic.
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string text = reg.TextExposition();
    ASSERT_NE(text.find("# TYPE swiftspatial_obs_storm_total counter"),
              std::string::npos);
    const uint64_t seen = ParseCounter(text, "swiftspatial_obs_storm_total");
    EXPECT_GE(seen, last);
    last = seen;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(h->bucket_count(1),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(ParseCounter(reg.TextExposition(),
                         "swiftspatial_obs_storm_total"),
            c->value());
}

TEST(MetricsRegistryTest, HistogramDefaultsAndFamilyBoundsShared) {
  MetricsRegistry reg;
  Histogram* a = reg.GetHistogram("swiftspatial_obs_lat_seconds");
  EXPECT_EQ(a->bounds(), MetricsRegistry::DefaultLatencyBuckets());
  // Same family, new label set: shares the family's bounds.
  Histogram* b =
      reg.GetHistogram("swiftspatial_obs_lat_seconds", {{"engine", "x"}});
  EXPECT_EQ(b->bounds(), a->bounds());
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace swiftspatial::obs
