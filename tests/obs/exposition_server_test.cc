// The HTTP scrape endpoint end to end over a real loopback socket:
// ephemeral-port bind, /metrics rendering (with obs self-metrics synced
// per scrape), liveness vs readiness semantics, 404s, and clean shutdown.
#include "obs/exposition_server.h"

#include <gtest/gtest.h>

#ifndef SWIFTSPATIAL_OBS_OFF
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <atomic>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace swiftspatial::obs {
namespace {

#ifdef SWIFTSPATIAL_OBS_OFF

TEST(ExpositionServerTest, CompiledOutServerRefusesToStart) {
  ExpositionServer server({});
  const Status s = server.Start();
  EXPECT_FALSE(s.ok());
  server.Stop();  // harmless
}

#else

// Minimal blocking HTTP GET against 127.0.0.1:port; returns the full
// response (status line + headers + body).
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExpositionServerTest, ServesMetricsHealthAndReadiness) {
  MetricsRegistry registry;
  registry.GetCounter("swiftspatial_service_admitted_total", {}, "test")->Increment(3);
  SpanBuffer spans(/*capacity=*/4);

  std::atomic<bool> ready{false};
  ExpositionServer::Options options;
  options.port = 0;  // ephemeral
  options.registry = &registry;
  options.spans = &spans;
  options.ready = [&ready] { return ready.load(); };
  ExpositionServer server(std::move(options));
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  ASSERT_GT(port, 0);

  // Liveness is unconditional once the thread runs.
  EXPECT_NE(HttpGet(port, "/healthz").find("200 OK"), std::string::npos);

  // Readiness tracks the probe.
  EXPECT_NE(HttpGet(port, "/readyz").find("503"), std::string::npos);
  ready.store(true);
  EXPECT_NE(HttpGet(port, "/readyz").find("200 OK"), std::string::npos);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("swiftspatial_service_admitted_total 3"),
            std::string::npos)
      << metrics;
  // Self-metrics ride along on every scrape.
  EXPECT_NE(metrics.find("swiftspatial_obs_metric_families"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("swiftspatial_obs_spans_dropped"), std::string::npos);

  EXPECT_NE(HttpGet(port, "/nope").find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 5u);

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.Start().ok()) << "not restartable after Stop()";
}

TEST(ExpositionServerTest, EphemeralPortsDoNotCollide) {
  ExpositionServer a({});
  ExpositionServer b({});
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), b.port());
  a.Stop();
  b.Stop();
}

#endif  // SWIFTSPATIAL_OBS_OFF

}  // namespace
}  // namespace swiftspatial::obs
