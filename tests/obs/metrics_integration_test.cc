// The metrics exposition cross-checked against the legacy stats structs: a
// warm-served distributed join must report the same admission, completion,
// and plan-cache numbers through the MetricsRegistry as through
// JoinService::Snapshot(), and the dist counters in the Global registry
// must move in step with the DistReport.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "exec/service.h"
#include "join/engine.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(MetricsIntegrationTest, ServedDistJoinMatchesLegacyStructs) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  // Private registry isolates the service/cache/stream series; the dist
  // layer reports to the Global registry (it is reached through the engine
  // API, which carries no registry pointer), so those are checked as
  // deltas.
  obs::MetricsRegistry reg;
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  obs::Counter* dist_runs = global.GetCounter("swiftspatial_dist_runs_total");
  obs::Counter* dist_shards =
      global.GetCounter("swiftspatial_dist_shards_executed_total");
  obs::Counter* exch_msgs =
      global.GetCounter("swiftspatial_dist_exchange_messages_total");
  const uint64_t runs0 = dist_runs->value();
  const uint64_t shards0 = dist_shards->value();
  const uint64_t msgs0 = exch_msgs->value();

  exec::JoinServiceOptions options;
  options.worker_threads = 2;
  options.max_concurrent = 1;
  options.metrics = &reg;
  exec::JoinService service(options);
  service.RegisterDataset("r", testutil::Uniform(400, 81));
  service.RegisterDataset("s", testutil::Uniform(400, 82));

  EngineConfig config;
  config.num_threads = 2;
  config.dist_nodes = 2;
  for (int i = 0; i < 2; ++i) {  // cold, then warm (plan-cache hit)
    auto handle =
        service.SubmitNamed("tenant-a", kDistPbsmEngine, "r", "s", config);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    exec::StreamSummary summary = handle->Collect();
    ASSERT_TRUE(summary.status.ok()) << summary.status.ToString();
    ASSERT_GT(summary.run.result.size(), 0u);
  }
  service.Drain();

  const exec::JoinServiceStats snap = service.Snapshot();
  EXPECT_EQ(snap.admitted, 2u);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.plan_cache.misses, 1u);
  EXPECT_EQ(snap.plan_cache.hits, 1u);

  // Service + cache series agree with the consistent snapshot.
  EXPECT_EQ(reg.GetCounter("swiftspatial_service_admitted_total")->value(),
            snap.admitted);
  EXPECT_EQ(reg.GetCounter("swiftspatial_service_completed_total")->value(),
            snap.completed);
  EXPECT_EQ(reg.GetCounter("swiftspatial_service_rejected_total")->value(),
            snap.rejected);
  EXPECT_EQ(reg.GetCounter("swiftspatial_cache_hits_total")->value(),
            snap.plan_cache.hits);
  EXPECT_EQ(reg.GetCounter("swiftspatial_cache_misses_total")->value(),
            snap.plan_cache.misses);

  // Per-tenant latency histograms recorded one observation per completion.
  obs::Histogram* run_hist = reg.GetHistogram("swiftspatial_service_run_seconds", {{"tenant", "tenant-a"}});
  obs::Histogram* wait_hist = reg.GetHistogram("swiftspatial_service_queue_wait_seconds", {{"tenant", "tenant-a"}});
  EXPECT_EQ(run_hist->count(), 2u);
  EXPECT_EQ(wait_hist->count(), 2u);
  EXPECT_GT(run_hist->sum(), 0.0);

  // Stream-level series (same private registry via StreamOptions).
  EXPECT_EQ(reg.GetHistogram("swiftspatial_stream_execute_seconds", {{"engine", kDistPbsmEngine}})->count(), 2u);
  EXPECT_GE(reg.GetCounter("swiftspatial_stream_chunks_total", {{"engine", kDistPbsmEngine}})->value(), 2u);

  // Dist-layer counters moved in step with the two cluster runs.
  EXPECT_EQ(dist_runs->value() - runs0, 2u);
  EXPECT_GT(dist_shards->value() - shards0, 0u);
  EXPECT_GT(exch_msgs->value() - msgs0, 0u);
  EXPECT_EQ((dist_shards->value() - shards0) % 2, 0u)
      << "identical runs must execute identical shard counts";

  // The one-pane-of-glass endpoint exposes every layer.
  const std::string text = service.MetricsText();
  for (const char* needle :
       {"swiftspatial_service_admitted_total 2",
        "swiftspatial_service_pending 0",
        "swiftspatial_service_running 0",
        "swiftspatial_service_queue_wait_seconds_bucket",
        "swiftspatial_cache_hits_total 1",
        "swiftspatial_stream_execute_seconds_count{engine=\"dist-pbsm\"} 2"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  const std::string json = service.MetricsJson();
  EXPECT_NE(json.find("\"swiftspatial_service_admitted_total\""),
            std::string::npos);

  // Deprecated alias still returns the same consistent snapshot.
  EXPECT_EQ(service.stats().admitted, snap.admitted);
}

}  // namespace
}  // namespace swiftspatial
