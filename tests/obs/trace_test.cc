// Span mechanics: parent links across contexts, idempotent End, the
// started/finished open-span accounting the cancellation tests lean on,
// drop-oldest behaviour at capacity, and the Chrome trace_event export.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace swiftspatial::obs {
namespace {

TEST(TraceTest, InactiveContextIsFreeOfSideEffects) {
  TraceContext ctx;  // default: inactive
  EXPECT_FALSE(ctx.active());
  ScopedSpan span(ctx, "noop");
  EXPECT_FALSE(span.active());
  span.AddAttr("k", "v");
  span.End();
  EXPECT_FALSE(span.context().active());
}

TEST(TraceTest, SpanTreeParentLinks) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  SpanBuffer buffer;
  TraceContext root_ctx = TraceContext::StartTrace(&buffer);
  ASSERT_TRUE(root_ctx.active());
  EXPECT_EQ(root_ctx.parent_span(), 0u);

  ScopedSpan root(root_ctx, "request");
  root.AddAttr("tenant", "t0");
  {
    ScopedSpan child(root.context(), "plan");
    ScopedSpan grandchild(child.context(), "task", /*track=*/3);
    EXPECT_EQ(buffer.open_spans(), 3u);
    grandchild.End();
    child.End();
  }
  root.End();
  EXPECT_EQ(buffer.open_spans(), 0u);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* request = nullptr;
  const SpanRecord* plan = nullptr;
  const SpanRecord* task = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.name == "request") request = &s;
    if (s.name == "plan") plan = &s;
    if (s.name == "task") task = &s;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(request->parent_id, 0u);
  EXPECT_EQ(plan->parent_id, request->span_id);
  EXPECT_EQ(task->parent_id, plan->span_id);
  EXPECT_EQ(task->track, 3);
  // All three share the trace id minted by StartTrace.
  EXPECT_EQ(plan->trace_id, request->trace_id);
  EXPECT_EQ(task->trace_id, request->trace_id);
  ASSERT_EQ(request->attrs.size(), 1u);
  EXPECT_EQ(request->attrs[0].first, "tenant");
}

TEST(TraceTest, EndIsIdempotentAndMoveSafe) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  SpanBuffer buffer;
  TraceContext ctx = TraceContext::StartTrace(&buffer);
  ScopedSpan a(ctx, "a");
  a.End();
  a.End();  // no double record
  EXPECT_EQ(buffer.size(), 1u);

  ScopedSpan b(ctx, "b");
  ScopedSpan moved = std::move(b);
  moved.End();
  // The moved-from span's destructor must not record a second time.
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.open_spans(), 0u);
}

TEST(TraceTest, DropOldestAtCapacity) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  SpanBuffer buffer(/*capacity=*/4);
  TraceContext ctx = TraceContext::StartTrace(&buffer);
  for (int i = 0; i < 6; ++i) {
    ScopedSpan span(ctx, "s" + std::to_string(i));
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  // The two OLDEST records were evicted; s2..s5 remain.
  EXPECT_EQ(spans.front().name, "s2");
  EXPECT_EQ(spans.back().name, "s5");
  // Accounting survives eviction and Clear.
  EXPECT_EQ(buffer.open_spans(), 0u);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.open_spans(), 0u);
}

TEST(TraceTest, ChromeTraceJsonShape) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  SpanBuffer buffer;
  TraceContext ctx = TraceContext::StartTrace(&buffer);
  {
    ScopedSpan span(ctx, "shard \"7\"", /*track=*/2);
    span.AddAttr("shard", "7");
  }
  const std::string json = buffer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":\"7\""), std::string::npos);
  // Quotes in span names are escaped.
  EXPECT_NE(json.find("shard \\\"7\\\""), std::string::npos);
}

}  // namespace
}  // namespace swiftspatial::obs
