// End-to-end trace propagation: one served distributed join produces a
// single connected span tree -- request -> queued/plan/execute -> merge ->
// shard -> commit -- with every committed shard appearing exactly once,
// parent links intact across thread and simulated-node boundaries, retried
// shards showing up under bumped attempt spans after an injected node
// failure, and every span closed even when a stream is cancelled mid-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dist/dist_join.h"
#include "exec/service.h"
#include "join/engine.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

using obs::ScopedSpan;
using obs::SpanBuffer;
using obs::SpanRecord;
using obs::TraceContext;

std::string Attr(const SpanRecord& span, const std::string& key) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return v;
  }
  return "";
}

// Owns a snapshot, grouping it by span name and indexing every span by id.
struct SpanIndex {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::vector<const SpanRecord*>> by_name;
  std::map<uint64_t, const SpanRecord*> by_id;

  explicit SpanIndex(std::vector<SpanRecord> snapshot)
      : spans(std::move(snapshot)) {
    for (const SpanRecord& s : spans) {
      by_name[s.name].push_back(&s);
      by_id[s.span_id] = &s;
    }
  }
  std::size_t count(const std::string& name) const {
    const auto it = by_name.find(name);
    return it == by_name.end() ? 0 : it->second.size();
  }
};

TEST(TracePropagationTest, ServedDistJoinFormsOneConnectedSpanTree) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  SpanBuffer buffer;
  exec::JoinServiceOptions options;
  options.worker_threads = 2;
  options.max_concurrent = 1;
  options.span_buffer = &buffer;
  exec::JoinService service(options);
  service.RegisterDataset("r", testutil::Uniform(500, 71));
  service.RegisterDataset("s", testutil::Uniform(500, 72));

  EngineConfig config;
  config.num_threads = 2;
  config.dist_nodes = 2;
  config.grid_cols = 4;
  config.grid_rows = 4;
  auto handle =
      service.SubmitNamed("tenant-a", kDistPbsmEngine, "r", "s", config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  exec::StreamSummary summary = handle->Collect();
  ASSERT_TRUE(summary.status.ok()) << summary.status.ToString();
  service.Drain();

  EXPECT_EQ(buffer.open_spans(), 0u);
  const SpanIndex idx(buffer.Snapshot());
  ASSERT_EQ(idx.count("request"), 1u);
  ASSERT_EQ(idx.count("queued"), 1u);
  ASSERT_EQ(idx.count("plan"), 1u);
  ASSERT_EQ(idx.count("execute"), 1u);
  ASSERT_EQ(idx.count("merge"), 1u);
  ASSERT_GE(idx.count("shard"), 1u);
  ASSERT_GE(idx.count("commit"), 1u);

  const SpanRecord* request = idx.by_name.at("request")[0];
  EXPECT_EQ(request->parent_id, 0u);
  EXPECT_EQ(Attr(*request, "tenant"), "tenant-a");
  EXPECT_EQ(Attr(*request, "engine"), kDistPbsmEngine);
  // Service and producer stages hang directly off the request.
  for (const char* stage : {"queued", "plan", "execute", "merge"}) {
    const SpanRecord* span = idx.by_name.at(stage)[0];
    EXPECT_EQ(span->parent_id, request->span_id) << stage;
    EXPECT_EQ(span->trace_id, request->trace_id) << stage;
  }
  const SpanRecord* merge = idx.by_name.at("merge")[0];

  // Every node-side shard execution parents on the merge span and runs on
  // that node's track (node id + 1, never the coordinator's track 0).
  std::set<std::string> executed_shards;
  for (const SpanRecord* shard : idx.by_name.at("shard")) {
    EXPECT_EQ(shard->parent_id, merge->span_id);
    EXPECT_EQ(shard->trace_id, request->trace_id);
    EXPECT_GT(shard->track, 0);
    EXPECT_EQ(Attr(*shard, "attempt"), "0");  // fault-free run
    EXPECT_TRUE(executed_shards.insert(Attr(*shard, "shard")).second)
        << "shard executed twice without a failure";
  }
  // Every committed shard appears exactly once, parented on the node-side
  // execution that produced it -- the cross-node link rides the exchange
  // messages.
  std::set<std::string> committed_shards;
  for (const SpanRecord* commit : idx.by_name.at("commit")) {
    EXPECT_TRUE(committed_shards.insert(Attr(*commit, "shard")).second)
        << "shard committed twice";
    const auto parent = idx.by_id.find(commit->parent_id);
    ASSERT_NE(parent, idx.by_id.end()) << "commit with dangling parent";
    EXPECT_EQ(parent->second->name, "shard");
    EXPECT_EQ(Attr(*parent->second, "shard"), Attr(*commit, "shard"));
  }
  EXPECT_EQ(committed_shards, executed_shards);
}

TEST(TracePropagationTest, RetriedShardsCommitUnderBumpedAttemptSpans) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  const Dataset r = testutil::Uniform(800, 73);
  const Dataset s = testutil::Uniform(800, 74);
  SpanBuffer buffer;
  ScopedSpan root(TraceContext::StartTrace(&buffer), "request");

  dist::DistJoinOptions options;
  options.num_nodes = 4;
  options.grid_cols = 6;
  options.grid_rows = 6;
  options.fault.fail_node = 0;
  options.fault.fail_after_shards = 2;
  options.trace = root.context();
  JoinResult result;
  auto report = dist::DistributedJoin(r, s, options, &result);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->retried_shards, 0u);
  root.End();

  EXPECT_EQ(buffer.open_spans(), 0u);
  const SpanIndex idx(buffer.Snapshot());

  // Committed exactly once per shard, commit count == planned shards.
  std::set<std::string> committed_shards;
  for (const SpanRecord* commit : idx.by_name.at("commit")) {
    EXPECT_TRUE(committed_shards.insert(Attr(*commit, "shard")).second)
        << "shard committed twice despite the node failure";
    const auto parent = idx.by_id.find(commit->parent_id);
    ASSERT_NE(parent, idx.by_id.end());
    EXPECT_EQ(parent->second->name, "shard");
    EXPECT_EQ(Attr(*parent->second, "shard"), Attr(*commit, "shard"));
  }
  EXPECT_EQ(committed_shards.size(), report->shards);

  // The re-executions show up as attempt-1 shard spans, and exactly the
  // retried shards have one.
  std::set<std::string> retried;
  for (const SpanRecord* shard : idx.by_name.at("shard")) {
    if (Attr(*shard, "attempt") != "0") {
      EXPECT_EQ(Attr(*shard, "attempt"), "1");
      retried.insert(Attr(*shard, "shard"));
    }
  }
  EXPECT_EQ(retried.size(), report->retried_shards);
}

TEST(TracePropagationTest, CancelledStreamClosesEverySpan) {
#ifdef SWIFTSPATIAL_OBS_OFF
  GTEST_SKIP() << "observability compiled out (SWIFTSPATIAL_OBS_OFF)";
#endif
  SpanBuffer buffer;
  {
    exec::JoinServiceOptions options;
    options.worker_threads = 2;
    options.max_concurrent = 1;
    // A tiny queue so the dense join's producer stalls on backpressure
    // mid-stream, guaranteeing the cancel lands while spans are open.
    options.stream.queue_capacity = 1;
    options.stream.chunk_pairs = 64;
    options.span_buffer = &buffer;
    exec::JoinService service(options);

    const Dataset r = testutil::Uniform(900, 75, /*map=*/300.0,
                                        /*max_edge=*/20.0);
    const Dataset s = testutil::Uniform(900, 76, /*map=*/300.0,
                                        /*max_edge=*/20.0);
    EngineConfig config;
    config.num_threads = 2;
    auto handle =
        service.Submit("tenant-b", kPartitionedEngine, r, s, config);
    ASSERT_TRUE(handle.ok());
    exec::ResultChunk chunk;
    ASSERT_TRUE(handle->Next(&chunk));  // stream is live
    handle->Cancel();
    const Status status = handle->Wait();
    EXPECT_FALSE(status.ok());
    service.Drain();
  }  // ~JoinService waits for the dispatcher, ending the request span
  EXPECT_EQ(buffer.open_spans(), 0u);
  EXPECT_GT(buffer.size(), 0u);
}

}  // namespace
}  // namespace swiftspatial
