#include "grid/pbsm_partition.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(PartitionStripes, StripesTileTheExtent) {
  const Dataset r = testutil::Uniform(500, 10);
  const Dataset s = testutil::Uniform(500, 11);
  const StripePartition p = PartitionStripes(r, s, 16, Axis::kX);
  ASSERT_EQ(p.stripes.size(), 16u);
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  EXPECT_FLOAT_EQ(p.stripes.front().min_x, extent.min_x);
  // Edges touching the extent max are pushed open (closed-boundary dedup).
  EXPECT_GE(p.stripes.back().max_x, extent.max_x);
  for (std::size_t i = 1; i + 1 < p.stripes.size(); ++i) {
    EXPECT_FLOAT_EQ(p.stripes[i].min_x, p.stripes[i - 1].max_x);
  }
  EXPECT_FLOAT_EQ(p.stripes.back().min_x,
                  p.stripes[p.stripes.size() - 2].max_x);
}

class StripeAxisTest : public ::testing::TestWithParam<Axis> {};

TEST_P(StripeAxisTest, EveryObjectInItsOverlappingStripes) {
  const Axis axis = GetParam();
  const Dataset r = testutil::Uniform(800, 12, 1000.0, /*max_edge=*/50.0);
  const Dataset s = testutil::Uniform(800, 13, 1000.0, /*max_edge=*/50.0);
  const StripePartition p = PartitionStripes(r, s, 20, axis);

  auto check = [&p](const Dataset& d,
                    const std::vector<std::vector<ObjectId>>& parts) {
    std::vector<int> count(d.size(), 0);
    for (std::size_t i = 0; i < p.stripes.size(); ++i) {
      for (ObjectId id : parts[i]) {
        ++count[id];
        EXPECT_TRUE(Intersects(d.box(static_cast<std::size_t>(id)),
                               p.stripes[i]));
      }
    }
    for (std::size_t i = 0; i < d.size(); ++i) EXPECT_GE(count[i], 1) << i;
  };
  check(r, p.r_parts);
  check(s, p.s_parts);
}

INSTANTIATE_TEST_SUITE_P(Axes, StripeAxisTest,
                         ::testing::Values(Axis::kX, Axis::kY));

TEST(PartitionStripes, WideObjectsSpanMultipleStripes) {
  Dataset r("wide", {Box(0, 0, 1000, 1)});
  Dataset s("narrow", {Box(500, 0, 501, 1)});
  const StripePartition p = PartitionStripes(r, s, 10, Axis::kX);
  int stripes_with_r = 0;
  for (const auto& part : p.r_parts) {
    if (!part.empty()) ++stripes_with_r;
  }
  EXPECT_EQ(stripes_with_r, 10);
}

TEST(PartitionStripes, SinglePartitionHoldsEverything) {
  const Dataset r = testutil::Uniform(200, 14);
  const Dataset s = testutil::Uniform(300, 15);
  const StripePartition p = PartitionStripes(r, s, 1, Axis::kX);
  EXPECT_EQ(p.r_parts[0].size(), 200u);
  EXPECT_EQ(p.s_parts[0].size(), 300u);
}

}  // namespace
}  // namespace swiftspatial
