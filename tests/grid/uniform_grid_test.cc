#include "grid/uniform_grid.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(UniformGrid, TileGeometryCoversExtent) {
  const UniformGrid grid(Box(0, 0, 100, 50), 4, 2);
  EXPECT_EQ(grid.num_tiles(), 8);
  EXPECT_EQ(grid.TileBox(0, 0), Box(0, 0, 25, 25));
  EXPECT_EQ(grid.TileBox(3, 1), Box(75, 25, 100, 50));
  // Tiles tile the extent exactly: union of all tile boxes = extent.
  Box u = Box::Empty();
  for (int t = 0; t < grid.num_tiles(); ++t) u.Expand(grid.TileBoxByIndex(t));
  EXPECT_EQ(u, Box(0, 0, 100, 50));
}

TEST(UniformGrid, TileRangeClamped) {
  const UniformGrid grid(Box(0, 0, 100, 100), 10, 10);
  int x0, y0, x1, y1;
  grid.TileRange(Box(-50, -50, 5, 5), &x0, &y0, &x1, &y1);
  EXPECT_EQ(x0, 0);
  EXPECT_EQ(y0, 0);
  grid.TileRange(Box(95, 95, 500, 500), &x0, &y0, &x1, &y1);
  EXPECT_EQ(x1, 9);
  EXPECT_EQ(y1, 9);
}

TEST(UniformGrid, AssignmentCoversEveryObject) {
  const Dataset d = testutil::Uniform(1000, 8);
  const UniformGrid grid(d.Extent(), 8, 8);
  const auto assign = grid.Assign(d);
  std::vector<int> seen(d.size(), 0);
  for (int t = 0; t < grid.num_tiles(); ++t) {
    const Box tile = grid.TileBoxByIndex(t);
    for (ObjectId id : assign[t]) {
      ++seen[id];
      EXPECT_TRUE(Intersects(d.box(static_cast<std::size_t>(id)), tile));
    }
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(seen[i], 1) << "object " << i << " unassigned";
  }
}

TEST(UniformGrid, MultiTileObjectsAssignedToAllOverlaps) {
  // One big box spanning the whole extent lands in every tile.
  Dataset d("big", {Box(0, 0, 100, 100), Box(10, 10, 11, 11)});
  const UniformGrid grid(Box(0, 0, 100, 100), 4, 4);
  const auto assign = grid.Assign(d);
  int big_count = 0;
  for (const auto& tile : assign) {
    for (ObjectId id : tile) {
      if (id == 0) ++big_count;
    }
  }
  EXPECT_EQ(big_count, 16);
}

TEST(UniformGrid, SingleTileGrid) {
  const Dataset d = testutil::Uniform(100, 9);
  const UniformGrid grid(d.Extent(), 1, 1);
  const auto assign = grid.Assign(d);
  EXPECT_EQ(assign[0].size(), d.size());
}

}  // namespace
}  // namespace swiftspatial
