#include "grid/hierarchical_partition.h"

#include <gtest/gtest.h>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(HierarchicalPartition, RespectsWorkloadCap) {
  const Dataset r = testutil::Uniform(3000, 20);
  const Dataset s = testutil::Uniform(3000, 21);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 16;
  const auto p = PartitionHierarchical(r, s, opt);
  EXPECT_EQ(p.tile_cap, 16);
  EXPECT_EQ(p.over_cap_tiles, 0u);
  for (const TileTask& t : p.tasks) {
    EXPECT_LE(t.r_objects.size() * t.s_objects.size(), 16u * 16u)
        << "tile workload over cap";
    EXPECT_FALSE(t.r_objects.empty());
    EXPECT_FALSE(t.s_objects.empty());
  }
}

TEST(HierarchicalPartition, SkewTriggersDeepSplits) {
  const Dataset r = testutil::Skewed(5000, 22);
  const Dataset s = testutil::Skewed(5000, 23);
  HierarchicalPartitionOptions coarse;
  coarse.tile_cap = 16;
  coarse.initial_grid = 4;  // badly matched to the skew: must split a lot
  const auto p = PartitionHierarchical(r, s, coarse);
  EXPECT_GT(p.tasks.size(), 16u * 16u / 4u);
  for (const TileTask& t : p.tasks) {
    if (p.over_cap_tiles == 0) {
      EXPECT_LE(t.r_objects.size() * t.s_objects.size(), 16u * 16u);
    }
  }
}

// The defining correctness property: joining all emitted tiles with the
// reference-point dedup reproduces the exact join result.
TEST(HierarchicalPartition, TileJoinsReproduceBruteForce) {
  const Dataset r = testutil::Uniform(1200, 24, 1000.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(1000, 25, 1000.0, /*max_edge=*/20.0);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 8;
  const auto p = PartitionHierarchical(r, s, opt);

  JoinResult got;
  for (const TileTask& t : p.tasks) {
    NestedLoopTileJoin(r, s, t.r_objects, t.s_objects, &t.tile, &got);
  }
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

// Above 2^24 the float lattice steps by 2, so a 64x64 initial grid over an
// 8-wide extent collapses runs of tile edges onto identical floats.
// Coordinate-based dedup-tile closing opened every tile whose rounded max
// edge collided with the extent max, double-claiming pairs once
// multi-assignment placed objects in all of them; index-driven CloseLastTile
// keeps the half-open claims disjoint. Joining all emitted tasks must
// reproduce brute force exactly (no drops, no double counts).
TEST(HierarchicalPartition, CollidedFloatTileEdgesFarFromOrigin) {
  const Coord base = 16777216.0f;  // 2^24
  std::vector<Box> pts;
  for (int i = 0; i <= 4; ++i) {
    const Coord v = base + static_cast<Coord>(2 * i);
    pts.push_back(Box(v, v, v, v));
    pts.push_back(Box(v, v, v, v));  // duplicate: forces splits at low caps
  }
  const Dataset r("ulp_r", std::vector<Box>(pts));
  const Dataset s("ulp_s", std::move(pts));
  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_EQ(expected.size(), 20u);  // 5 positions x 2 x 2 duplicates

  HierarchicalPartitionOptions opt;
  opt.initial_grid = 64;
  opt.tile_cap = 2;
  const auto p = PartitionHierarchical(r, s, opt);
  JoinResult got;
  for (const TileTask& t : p.tasks) {
    NestedLoopTileJoin(r, s, t.r_objects, t.s_objects, &t.tile, &got);
  }
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
      << "expected " << expected.size() << " pairs, got " << got.size();
}

TEST(HierarchicalPartition, CoincidentObjectsHitDepthLimit) {
  // 100 identical rectangles on both sides cannot be split below the cap;
  // the partitioner must terminate and report over-cap tiles.
  std::vector<Box> same(100, Box(10, 10, 11, 11));
  const Dataset r("r", same);
  const Dataset s("s", same);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = 4;
  opt.max_depth = 5;
  const auto p = PartitionHierarchical(r, s, opt);
  EXPECT_GT(p.over_cap_tiles, 0u);

  // Still correct despite the cap violation.
  JoinResult got;
  for (const TileTask& t : p.tasks) {
    NestedLoopTileJoin(r, s, t.r_objects, t.s_objects, &t.tile, &got);
  }
  EXPECT_EQ(got.size(), 100u * 100u);
}

TEST(HierarchicalPartition, DisjointDatasetsYieldNoTasks) {
  Dataset r("left", {Box(0, 0, 1, 1), Box(2, 2, 3, 3)});
  Dataset s("right", {Box(100, 100, 101, 101)});
  const auto p = PartitionHierarchical(r, s, {});
  // Tiles holding only one side are never emitted.
  for (const TileTask& t : p.tasks) {
    EXPECT_FALSE(t.r_objects.empty());
    EXPECT_FALSE(t.s_objects.empty());
  }
  JoinResult got;
  for (const TileTask& t : p.tasks) {
    NestedLoopTileJoin(r, s, t.r_objects, t.s_objects, &t.tile, &got);
  }
  EXPECT_TRUE(got.empty());
}

TEST(HierarchicalPartition, EmptyInput) {
  Dataset r("none", {});
  Dataset s("none", {});
  const auto p = PartitionHierarchical(r, s, {});
  EXPECT_TRUE(p.tasks.empty());
}

class TileCapTest : public ::testing::TestWithParam<int> {};

TEST_P(TileCapTest, CorrectForAllCaps) {
  const int cap = GetParam();
  const Dataset r = testutil::Skewed(800, 26);
  const Dataset s = testutil::Uniform(800, 27);
  HierarchicalPartitionOptions opt;
  opt.tile_cap = cap;
  const auto p = PartitionHierarchical(r, s, opt);
  JoinResult got;
  for (const TileTask& t : p.tasks) {
    NestedLoopTileJoin(r, s, t.r_objects, t.s_objects, &t.tile, &got);
  }
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got)) << "cap=" << cap;
}

INSTANTIATE_TEST_SUITE_P(Caps, TileCapTest, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace swiftspatial
