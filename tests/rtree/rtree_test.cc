#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

std::vector<ObjectId> BruteForceWindow(const Dataset& d, const Box& w) {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (Intersects(d.box(i), w)) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

TEST(RTree, EmptyTree) {
  RTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(t.WindowQuery(Box(0, 0, 1, 1)).empty());
}

TEST(RTree, InsertAndQuerySingle) {
  RTree t;
  t.Insert(7, Box(1, 1, 2, 2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.height(), 1);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.WindowQuery(Box(0, 0, 3, 3)), std::vector<ObjectId>{7});
  EXPECT_TRUE(t.WindowQuery(Box(5, 5, 6, 6)).empty());
}

TEST(RTree, GrowsAndStaysValid) {
  RTreeOptions opt;
  opt.max_entries = 8;
  RTree t(opt);
  const Dataset d = testutil::Uniform(2000, 21);
  for (std::size_t i = 0; i < d.size(); ++i) {
    t.Insert(static_cast<ObjectId>(i), d.box(i));
    if (i % 250 == 249) {
      ASSERT_TRUE(t.Validate().ok()) << "at insert " << i;
    }
  }
  EXPECT_EQ(t.size(), 2000u);
  EXPECT_GE(t.height(), 3);
  ASSERT_TRUE(t.Validate().ok());
}

class RTreeQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeQueryTest, WindowQueryMatchesBruteForce) {
  RTreeOptions opt;
  opt.max_entries = GetParam();
  const Dataset d = testutil::Uniform(1500, 31);
  RTree t = RTree::BuildByInsertion(d, opt);
  ASSERT_TRUE(t.Validate().ok());

  Rng rng(32);
  for (int q = 0; q < 30; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    const Box w(x, y, x + 80, y + 80);
    auto got = t.WindowQuery(w);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceWindow(d, w));
  }
}

INSTANTIATE_TEST_SUITE_P(NodeSizes, RTreeQueryTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(RTree, DeleteRemovesRecord) {
  const Dataset d = testutil::Uniform(500, 41);
  RTree t = RTree::BuildByInsertion(d);
  ASSERT_TRUE(t.Validate().ok());

  // Delete every third record.
  std::size_t remaining = d.size();
  for (std::size_t i = 0; i < d.size(); i += 3) {
    ASSERT_TRUE(t.Delete(static_cast<ObjectId>(i), d.box(i)).ok()) << i;
    --remaining;
  }
  EXPECT_EQ(t.size(), remaining);
  ASSERT_TRUE(t.Validate().ok());

  // Deleted records are gone; others remain.
  auto all = t.WindowQuery(d.Extent());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const bool deleted = i % 3 == 0;
    const bool found = std::binary_search(all.begin(), all.end(),
                                          static_cast<ObjectId>(i));
    EXPECT_EQ(found, !deleted) << i;
  }
}

TEST(RTree, DeleteMissingRecordFails) {
  RTree t;
  t.Insert(1, Box(0, 0, 1, 1));
  EXPECT_EQ(t.Delete(2, Box(0, 0, 1, 1)).code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Delete(1, Box(0, 0, 2, 2)).code(), StatusCode::kNotFound);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RTree, DeleteToEmptyAndReuse) {
  RTree t;
  t.Insert(1, Box(0, 0, 1, 1));
  t.Insert(2, Box(2, 2, 3, 3));
  ASSERT_TRUE(t.Delete(1, Box(0, 0, 1, 1)).ok());
  ASSERT_TRUE(t.Delete(2, Box(2, 2, 3, 3)).ok());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Validate().ok());
  t.Insert(3, Box(5, 5, 6, 6));
  EXPECT_EQ(t.WindowQuery(Box(0, 0, 10, 10)), std::vector<ObjectId>{3});
}

TEST(RTree, MixedInsertDeleteWorkload) {
  // The iterative-join motivation of §5.9: dynamic updates between joins.
  const Dataset d = testutil::Uniform(1000, 51);
  RTreeOptions opt;
  opt.max_entries = 8;
  RTree t(opt);
  Rng rng(52);
  std::vector<bool> present(d.size(), false);
  std::size_t live = 0;
  for (int step = 0; step < 4000; ++step) {
    const std::size_t i = rng.NextBelow(d.size());
    if (present[i]) {
      ASSERT_TRUE(t.Delete(static_cast<ObjectId>(i), d.box(i)).ok());
      present[i] = false;
      --live;
    } else {
      t.Insert(static_cast<ObjectId>(i), d.box(i));
      present[i] = true;
      ++live;
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(t.Validate().ok()) << "step " << step;
    }
  }
  EXPECT_EQ(t.size(), live);
  auto all = t.WindowQuery(d.Extent());
  EXPECT_EQ(all.size(), live);
}

TEST(RTree, PackProducesEquivalentPackedTree) {
  const Dataset d = testutil::Uniform(1200, 61);
  RTree t = RTree::BuildByInsertion(d);
  const PackedRTree packed = t.Pack();
  ASSERT_TRUE(packed.Validate().ok());
  EXPECT_EQ(packed.num_objects(), d.size());
  EXPECT_EQ(packed.height(), t.height());

  Rng rng(62);
  for (int q = 0; q < 20; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    const Box w(x, y, x + 120, y + 120);
    auto a = t.WindowQuery(w);
    auto b = packed.WindowQuery(w);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(RTree, MoveSemantics) {
  RTree a = RTree::BuildByInsertion(testutil::Uniform(100, 71));
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.Validate().ok());
}

}  // namespace
}  // namespace swiftspatial
