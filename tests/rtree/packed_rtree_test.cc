#include "rtree/packed_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rtree/bulk_load.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

// Builds a tiny two-level tree by hand: 2 leaves under 1 root.
PackedRTree HandBuilt() {
  std::vector<std::vector<PackedRTree::BuildNode>> levels(2);
  PackedRTree::BuildNode leaf0;
  leaf0.is_leaf = true;
  leaf0.entries = {{Box(0, 0, 1, 1), 10}, {Box(2, 2, 3, 3), 11}};
  PackedRTree::BuildNode leaf1;
  leaf1.is_leaf = true;
  leaf1.entries = {{Box(5, 5, 6, 6), 12}};
  levels[0] = {leaf0, leaf1};
  PackedRTree::BuildNode root;
  root.is_leaf = false;
  root.entries = {{Box(0, 0, 3, 3), 0}, {Box(5, 5, 6, 6), 1}};
  levels[1] = {root};
  return PackedRTree::FromLevels(std::move(levels), 4);
}

TEST(PackedRTree, StrideIs64ByteAligned) {
  EXPECT_EQ(PackedRTree::StrideFor(2), 64u);   // 8 + 40 -> 64
  EXPECT_EQ(PackedRTree::StrideFor(16), 384u); // 8 + 320 -> 384
  EXPECT_EQ(PackedRTree::StrideFor(8), 192u);  // 8 + 160 -> 192
  EXPECT_EQ(PackedRTree::StrideFor(3) % 64, 0u);
}

TEST(PackedRTree, HandBuiltStructure) {
  const PackedRTree t = HandBuilt();
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.num_leaves(), 2u);
  EXPECT_EQ(t.num_objects(), 3u);
  EXPECT_EQ(t.root(), 2);  // leaves first, root last

  const NodeView root = t.node(t.root());
  EXPECT_FALSE(root.is_leaf());
  EXPECT_EQ(root.count(), 2);
  // Child references rewritten to global indices.
  EXPECT_EQ(root.entry(0).id, 0);
  EXPECT_EQ(root.entry(1).id, 1);

  const NodeView leaf = t.node(0);
  EXPECT_TRUE(leaf.is_leaf());
  EXPECT_EQ(leaf.entry(1).id, 11);
  EXPECT_EQ(leaf.Mbr(), Box(0, 0, 3, 3));
}

TEST(PackedRTree, HandBuiltValidates) {
  EXPECT_TRUE(HandBuilt().Validate().ok());
}

TEST(PackedRTree, WindowQueryHandBuilt) {
  const PackedRTree t = HandBuilt();
  auto hits = t.WindowQuery(Box(0.5, 0.5, 2.5, 2.5));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<ObjectId>{10, 11}));
  EXPECT_TRUE(t.WindowQuery(Box(8, 8, 9, 9)).empty());
}

TEST(PackedRTree, WindowQueryMatchesBruteForce) {
  const Dataset d = testutil::Uniform(2000, 17);
  BulkLoadOptions opt;
  opt.max_entries = 16;
  const PackedRTree t = StrBulkLoad(d, opt);
  ASSERT_TRUE(t.Validate().ok());

  Rng rng(55);
  for (int q = 0; q < 50; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    const Box window(x, y, x + 100, y + 100);
    auto got = t.WindowQuery(window);
    std::vector<ObjectId> expected;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (Intersects(d.box(i), window)) {
        expected.push_back(static_cast<ObjectId>(i));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(PackedRTree, NodeOffsetMatchesStride) {
  const PackedRTree t = HandBuilt();
  EXPECT_EQ(t.NodeOffset(0), 0u);
  EXPECT_EQ(t.NodeOffset(2), 2 * t.node_stride());
  EXPECT_EQ(t.bytes().size(), t.num_nodes() * t.node_stride());
}

TEST(PackedRTree, SingleNodeTree) {
  std::vector<std::vector<PackedRTree::BuildNode>> levels(1);
  PackedRTree::BuildNode root;
  root.is_leaf = true;
  root.entries = {{Box(0, 0, 1, 1), 0}};
  levels[0] = {root};
  const PackedRTree t = PackedRTree::FromLevels(std::move(levels), 4);
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.WindowQuery(Box(0, 0, 2, 2)).size(), 1u);
}

TEST(PackedRTree, CountObjectsAgrees) {
  const Dataset d = testutil::Uniform(777, 3);
  BulkLoadOptions opt;
  const PackedRTree t = StrBulkLoad(d, opt);
  EXPECT_EQ(t.CountObjects(), 777u);
  EXPECT_EQ(t.num_objects(), 777u);
}

}  // namespace
}  // namespace swiftspatial
