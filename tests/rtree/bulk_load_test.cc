#include "rtree/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

enum class Loader { kStr, kHilbert };

PackedRTree Load(Loader loader, const Dataset& d, int max_entries,
                 std::size_t threads = 1) {
  BulkLoadOptions opt;
  opt.max_entries = max_entries;
  opt.num_threads = threads;
  return loader == Loader::kStr ? StrBulkLoad(d, opt) : HilbertBulkLoad(d, opt);
}

class BulkLoadTest
    : public ::testing::TestWithParam<std::tuple<Loader, int>> {};

TEST_P(BulkLoadTest, ValidTreeWithAllObjects) {
  const auto [loader, max_entries] = GetParam();
  const Dataset d = testutil::Uniform(3000, 13);
  const PackedRTree t = Load(loader, d, max_entries);
  ASSERT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.num_objects(), d.size());
  EXPECT_EQ(t.max_entries(), max_entries);

  // Every object id appears exactly once across all leaves.
  std::vector<int> seen(d.size(), 0);
  for (std::size_t n = 0; n < t.num_nodes(); ++n) {
    const NodeView nv = t.node(static_cast<NodeIndex>(n));
    if (!nv.is_leaf()) continue;
    for (int e = 0; e < nv.count(); ++e) {
      const PackedEntry entry = nv.entry(e);
      ASSERT_GE(entry.id, 0);
      ASSERT_LT(static_cast<std::size_t>(entry.id), d.size());
      ++seen[entry.id];
      EXPECT_EQ(entry.box, d.box(static_cast<std::size_t>(entry.id)));
    }
  }
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST_P(BulkLoadTest, WindowQueryCorrect) {
  const auto [loader, max_entries] = GetParam();
  const Dataset d = testutil::Skewed(2500, 14);
  const PackedRTree t = Load(loader, d, max_entries);
  Rng rng(15);
  for (int q = 0; q < 25; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    const Box w(x, y, x + 60, y + 60);
    auto got = t.WindowQuery(w);
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expected;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (Intersects(d.box(i), w)) expected.push_back(static_cast<ObjectId>(i));
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoadersAndNodeSizes, BulkLoadTest,
    ::testing::Combine(::testing::Values(Loader::kStr, Loader::kHilbert),
                       ::testing::Values(4, 8, 16, 32, 64)));

TEST(StrBulkLoad, ParallelSortMatchesSerial) {
  const Dataset d = testutil::Uniform(50000, 16);
  const PackedRTree serial = Load(Loader::kStr, d, 16, 1);
  const PackedRTree parallel = Load(Loader::kStr, d, 16, 4);
  ASSERT_TRUE(parallel.Validate().ok());
  EXPECT_EQ(serial.num_nodes(), parallel.num_nodes());
  EXPECT_EQ(serial.height(), parallel.height());
  // Identical construction: the parallel sort is a stable reordering of the
  // same comparator, so the trees should match byte for byte.
  EXPECT_EQ(serial.bytes(), parallel.bytes());
}

TEST(StrBulkLoad, TinyDatasets) {
  for (uint64_t n : {1u, 2u, 3u, 5u, 16u, 17u}) {
    const Dataset d = testutil::Uniform(n, 100 + n);
    const PackedRTree t = Load(Loader::kStr, d, 16);
    ASSERT_TRUE(t.Validate().ok()) << "n=" << n;
    EXPECT_EQ(t.num_objects(), n);
    EXPECT_EQ(t.WindowQuery(d.Extent()).size(), n);
  }
}

TEST(HilbertBulkLoad, TinyDatasets) {
  for (uint64_t n : {1u, 2u, 16u, 33u}) {
    const Dataset d = testutil::Uniform(n, 200 + n);
    const PackedRTree t = Load(Loader::kHilbert, d, 16);
    ASSERT_TRUE(t.Validate().ok()) << "n=" << n;
    EXPECT_EQ(t.num_objects(), n);
  }
}

TEST(BulkLoad, HeightIsLogarithmic) {
  const Dataset d = testutil::Uniform(10000, 17);
  const PackedRTree t16 = Load(Loader::kStr, d, 16);
  // 10000 objects / fanout 16: leaves ~625, level2 ~40, level3 ~3, root.
  EXPECT_GE(t16.height(), 3);
  EXPECT_LE(t16.height(), 5);
  const PackedRTree t64 = Load(Loader::kStr, d, 64);
  EXPECT_LT(t64.height(), t16.height());
}

TEST(BulkLoad, NoUnderfilledNodes) {
  // PackRun balances the tail: no node below half fill (except a lone root).
  const Dataset d = testutil::Uniform(4097, 18);
  const PackedRTree t = Load(Loader::kStr, d, 16);
  for (std::size_t n = 0; n < t.num_nodes(); ++n) {
    if (static_cast<NodeIndex>(n) == t.root()) continue;
    EXPECT_GE(t.node(static_cast<NodeIndex>(n)).count(), 8) << "node " << n;
  }
}

TEST(BulkLoad, StrQualityNotWorseThanHilbertByMuch) {
  // Structural sanity: both loaders should produce trees of the same height
  // for the same fanout and data.
  const Dataset d = testutil::Uniform(20000, 19);
  const PackedRTree str = Load(Loader::kStr, d, 16);
  const PackedRTree hil = Load(Loader::kHilbert, d, 16);
  EXPECT_EQ(str.height(), hil.height());
}

}  // namespace
}  // namespace swiftspatial
