// Tests of the R* insertion policy (§2.2, [11]): correctness first
// (identical query results, valid trees under mixed workloads), then the
// topology-quality properties that motivate it.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

RTree BuildRStar(const Dataset& d, int max_entries = 16) {
  RTreeOptions opt;
  opt.max_entries = max_entries;
  opt.policy = InsertionPolicy::kRStar;
  return RTree::BuildByInsertion(d, opt);
}

TEST(RStarTree, ValidAfterBulkInsertion) {
  const Dataset d = testutil::Uniform(3000, 400);
  RTree t = BuildRStar(d);
  EXPECT_EQ(t.size(), d.size());
  ASSERT_TRUE(t.Validate().ok());
}

class RStarQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RStarQueryTest, WindowQueryMatchesBruteForce) {
  const Dataset d = testutil::Skewed(1500, 401);
  RTreeOptions opt;
  opt.max_entries = GetParam();
  opt.policy = InsertionPolicy::kRStar;
  RTree t = RTree::BuildByInsertion(d, opt);
  ASSERT_TRUE(t.Validate().ok());

  Rng rng(402);
  for (int q = 0; q < 25; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    const Box w(x, y, x + 90, y + 90);
    auto got = t.WindowQuery(w);
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expected;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (Intersects(d.box(i), w)) expected.push_back(static_cast<ObjectId>(i));
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeSizes, RStarQueryTest,
                         ::testing::Values(8, 16, 32));

TEST(RStarTree, DeleteStillWorks) {
  const Dataset d = testutil::Uniform(600, 403);
  RTree t = BuildRStar(d);
  for (std::size_t i = 0; i < d.size(); i += 2) {
    ASSERT_TRUE(t.Delete(static_cast<ObjectId>(i), d.box(i)).ok()) << i;
  }
  EXPECT_EQ(t.size(), d.size() / 2);
  ASSERT_TRUE(t.Validate().ok());
}

TEST(RStarTree, MixedWorkloadStaysValid) {
  const Dataset d = testutil::Skewed(800, 404);
  RTreeOptions opt;
  opt.max_entries = 8;
  opt.policy = InsertionPolicy::kRStar;
  RTree t(opt);
  Rng rng(405);
  std::vector<bool> present(d.size(), false);
  for (int step = 0; step < 3000; ++step) {
    const std::size_t i = rng.NextBelow(d.size());
    if (present[i]) {
      ASSERT_TRUE(t.Delete(static_cast<ObjectId>(i), d.box(i)).ok());
    } else {
      t.Insert(static_cast<ObjectId>(i), d.box(i));
    }
    present[i] = !present[i];
    if (step % 500 == 499) {
      ASSERT_TRUE(t.Validate().ok()) << step;
    }
  }
  ASSERT_TRUE(t.Validate().ok());
}

TEST(RStarTree, PackRoundTrip) {
  const Dataset d = testutil::Uniform(1000, 406);
  RTree t = BuildRStar(d);
  const PackedRTree packed = t.Pack();
  ASSERT_TRUE(packed.Validate().ok());
  EXPECT_EQ(packed.num_objects(), d.size());
}

// Topology quality (deterministic fixture, so the inequalities are stable):
// R* should produce leaves that overlap less than Guttman's quadratic
// split, and bulk loading should beat both (§2.2).
TEST(RStarTree, TopologyQualityOrdering) {
  const Dataset d = testutil::Uniform(4000, 407);
  RTreeOptions gopt;
  gopt.max_entries = 16;
  const PackedRTree guttman = RTree::BuildByInsertion(d, gopt).Pack();
  const PackedRTree rstar = BuildRStar(d, 16).Pack();
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree str = StrBulkLoad(d, bl);

  const TreeQualityStats g = ComputeTreeQuality(guttman);
  const TreeQualityStats r = ComputeTreeQuality(rstar);
  const TreeQualityStats s = ComputeTreeQuality(str);

  // R* splits minimise overlap directly and beat Guttman's quadratic split.
  EXPECT_LT(r.leaf_overlap_area, g.leaf_overlap_area);
  // Bulk loading beats naive dynamic insertion on overlap and packs leaves
  // much fuller (its build-cost advantage is covered by the quality bench).
  EXPECT_LT(s.leaf_overlap_area, g.leaf_overlap_area);
  EXPECT_GT(s.avg_leaf_fill, g.avg_leaf_fill);
  EXPECT_GT(s.avg_leaf_fill, 0.9);  // STR packs nearly full leaves
}

TEST(RStarTree, FewerNodeAccessesThanGuttman) {
  const Dataset d = testutil::Uniform(4000, 408);
  const PackedRTree guttman =
      RTree::BuildByInsertion(d, RTreeOptions{}).Pack();
  const PackedRTree rstar = BuildRStar(d).Pack();

  Rng rng(409);
  std::vector<Box> windows;
  for (int q = 0; q < 200; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    windows.push_back(Box(x, y, x + 50, y + 50));
  }
  EXPECT_LT(AvgNodeAccesses(rstar, windows), AvgNodeAccesses(guttman, windows));
}

TEST(TreeQualityStats, CountsBasics) {
  const Dataset d = testutil::Uniform(500, 410);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree t = StrBulkLoad(d, bl);
  const TreeQualityStats q = ComputeTreeQuality(t);
  EXPECT_EQ(q.num_nodes, t.num_nodes());
  EXPECT_EQ(q.num_leaves, t.num_leaves());
  EXPECT_EQ(q.height, t.height());
  EXPECT_GT(q.avg_leaf_fill, 0.5);
  EXPECT_LE(q.avg_leaf_fill, 1.0);
  EXPECT_GT(q.total_leaf_area, 0);
}

TEST(WindowQueryCounting, MatchesPlainQuery) {
  const Dataset d = testutil::Uniform(800, 411);
  BulkLoadOptions bl;
  const PackedRTree t = StrBulkLoad(d, bl);
  const Box w(100, 100, 300, 300);
  std::size_t visited = 0;
  auto counted = WindowQueryCounting(t, w, &visited);
  auto plain = t.WindowQuery(w);
  std::sort(counted.begin(), counted.end());
  std::sort(plain.begin(), plain.end());
  EXPECT_EQ(counted, plain);
  EXPECT_GE(visited, 1u);
  EXPECT_LE(visited, t.num_nodes());
}

TEST(InsertionPolicyToString, Names) {
  EXPECT_STREQ(InsertionPolicyToString(InsertionPolicy::kGuttman), "guttman");
  EXPECT_STREQ(InsertionPolicyToString(InsertionPolicy::kRStar), "r-star");
}

}  // namespace
}  // namespace swiftspatial
