#include "geometry/box.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace swiftspatial {
namespace {

TEST(Box, BasicAccessors) {
  const Box b(1, 2, 5, 10);
  EXPECT_FLOAT_EQ(b.Width(), 4);
  EXPECT_FLOAT_EQ(b.Height(), 8);
  EXPECT_DOUBLE_EQ(b.Area(), 32.0);
  EXPECT_DOUBLE_EQ(b.Perimeter(), 24.0);
  EXPECT_EQ(b.Center(), (Point{3, 6}));
  EXPECT_FALSE(b.IsEmpty());
}

TEST(Box, EmptyIdentityForExpand) {
  Box e = Box::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  e.Expand(Box(3, 4, 5, 6));
  EXPECT_EQ(e, Box(3, 4, 5, 6));
}

TEST(Box, IntersectsOverlapping) {
  EXPECT_TRUE(Intersects(Box(0, 0, 2, 2), Box(1, 1, 3, 3)));
  EXPECT_TRUE(Intersects(Box(1, 1, 3, 3), Box(0, 0, 2, 2)));
}

TEST(Box, IntersectsTouchingEdge) {
  // Closed boundaries: touching counts as intersecting (the hardware
  // comparison is >=).
  EXPECT_TRUE(Intersects(Box(0, 0, 1, 1), Box(1, 0, 2, 1)));
  EXPECT_TRUE(Intersects(Box(0, 0, 1, 1), Box(0, 1, 1, 2)));
  EXPECT_TRUE(Intersects(Box(0, 0, 1, 1), Box(1, 1, 2, 2)));  // corner touch
}

TEST(Box, DisjointDoNotIntersect) {
  EXPECT_FALSE(Intersects(Box(0, 0, 1, 1), Box(2, 0, 3, 1)));
  EXPECT_FALSE(Intersects(Box(0, 0, 1, 1), Box(0, 2, 1, 3)));
}

TEST(Box, ContainsAndContainsPoint) {
  const Box outer(0, 0, 10, 10);
  EXPECT_TRUE(Contains(outer, Box(2, 2, 8, 8)));
  EXPECT_TRUE(Contains(outer, outer));  // closed: contains itself
  EXPECT_FALSE(Contains(outer, Box(2, 2, 11, 8)));
  EXPECT_TRUE(ContainsPoint(outer, Point{0, 0}));
  EXPECT_TRUE(ContainsPoint(outer, Point{10, 10}));
  EXPECT_FALSE(ContainsPoint(outer, Point{10.5, 5}));
}

TEST(Box, IntersectionGeometry) {
  const Box i = Intersection(Box(0, 0, 4, 4), Box(2, 1, 6, 3));
  EXPECT_EQ(i, Box(2, 1, 4, 3));
  EXPECT_TRUE(Intersection(Box(0, 0, 1, 1), Box(5, 5, 6, 6)).IsEmpty());
}

TEST(Box, EnlargementZeroWhenContained) {
  const Box b(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(b.Enlargement(Box(1, 1, 2, 2)), 0.0);
  EXPECT_GT(b.Enlargement(Box(9, 9, 12, 12)), 0.0);
}

TEST(Box, PointBoxRoundTrip) {
  const Box p = Box::FromPoint(Point{3.5, -2.25});
  EXPECT_FLOAT_EQ(p.min_x, 3.5);
  EXPECT_FLOAT_EQ(p.max_x, 3.5);
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
  EXPECT_TRUE(Intersects(p, Box(3, -3, 4, -2)));
}

// Property: the reference-point rule assigns every intersecting pair to
// exactly one tile of a grid covering the intersection.
TEST(Box, ReferencePointAssignsExactlyOneTile) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    const double x1 = rng.Uniform(0, 90), y1 = rng.Uniform(0, 90);
    const double x2 = rng.Uniform(0, 90), y2 = rng.Uniform(0, 90);
    const Box r(static_cast<Coord>(x1), static_cast<Coord>(y1),
                static_cast<Coord>(x1 + rng.Uniform(1, 10)),
                static_cast<Coord>(y1 + rng.Uniform(1, 10)));
    const Box s(static_cast<Coord>(x2), static_cast<Coord>(y2),
                static_cast<Coord>(x2 + rng.Uniform(1, 10)),
                static_cast<Coord>(y2 + rng.Uniform(1, 10)));
    if (!Intersects(r, s)) continue;
    // 10 x 10 grid of 10-unit tiles over [0, 100).
    int owners = 0;
    for (int ty = 0; ty < 10; ++ty) {
      for (int tx = 0; tx < 10; ++tx) {
        const Box tile(static_cast<Coord>(10 * tx), static_cast<Coord>(10 * ty),
                       static_cast<Coord>(10 * (tx + 1)),
                       static_cast<Coord>(10 * (ty + 1)));
        if (ReferencePointInTile(r, s, tile)) ++owners;
      }
    }
    EXPECT_EQ(owners, 1) << r.ToString() << " vs " << s.ToString();
  }
}

TEST(Box, IntersectsIsSymmetric) {
  Rng rng(43);
  for (int trial = 0; trial < 1000; ++trial) {
    const Box a(static_cast<Coord>(rng.Uniform(0, 50)),
                static_cast<Coord>(rng.Uniform(0, 50)),
                static_cast<Coord>(rng.Uniform(50, 100)),
                static_cast<Coord>(rng.Uniform(50, 100)));
    const Box b(static_cast<Coord>(rng.Uniform(0, 100)),
                static_cast<Coord>(rng.Uniform(0, 100)),
                static_cast<Coord>(rng.Uniform(0, 100) + 100),
                static_cast<Coord>(rng.Uniform(0, 100) + 100));
    EXPECT_EQ(Intersects(a, b), Intersects(b, a));
  }
}

}  // namespace
}  // namespace swiftspatial
