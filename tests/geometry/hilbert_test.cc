#include "geometry/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace swiftspatial {
namespace {

TEST(Hilbert, Order1Curve) {
  // The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertD2XYInverse(1, 0, 0), 0u);
  EXPECT_EQ(HilbertD2XYInverse(1, 0, 1), 1u);
  EXPECT_EQ(HilbertD2XYInverse(1, 1, 1), 2u);
  EXPECT_EQ(HilbertD2XYInverse(1, 1, 0), 3u);
}

TEST(Hilbert, RoundTripOrder4) {
  const uint32_t order = 4;
  const uint64_t n = 1ull << order;
  for (uint64_t d = 0; d < n * n; ++d) {
    uint32_t x, y;
    HilbertD2XY(order, d, &x, &y);
    EXPECT_EQ(HilbertD2XYInverse(order, x, y), d);
  }
}

TEST(Hilbert, BijectiveOrder5) {
  const uint32_t order = 5;
  const uint32_t n = 1u << order;
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < n; ++x) {
    for (uint32_t y = 0; y < n; ++y) {
      const uint64_t d = HilbertD2XYInverse(order, x, y);
      EXPECT_LT(d, static_cast<uint64_t>(n) * n);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * n);
}

TEST(Hilbert, ConsecutiveIndicesAreNeighbors) {
  // The defining locality property: consecutive curve positions are
  // adjacent cells (Manhattan distance 1).
  const uint32_t order = 6;
  const uint64_t total = 1ull << (2 * order);
  uint32_t px, py;
  HilbertD2XY(order, 0, &px, &py);
  for (uint64_t d = 1; d < total; ++d) {
    uint32_t x, y;
    HilbertD2XY(order, d, &x, &y);
    const int dist = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                     std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(dist, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(Hilbert, HighOrderRoundTripSamples) {
  const uint32_t order = 16;
  for (uint64_t d : {0ull, 1ull, 12345ull, 999999999ull,
                     (1ull << 32) - 1}) {
    uint32_t x, y;
    HilbertD2XY(order, d, &x, &y);
    EXPECT_EQ(HilbertD2XYInverse(order, x, y), d);
  }
}

}  // namespace
}  // namespace swiftspatial
