// Unit tests for the structure-of-arrays BoxBlock: construction from boxes
// and dataset subsets, coordinate-array layout, incremental build/clear, and
// sizes that are not a multiple of the filter kernel's vector width (the
// kernel's tail path consumes blocks of any length).
#include "geometry/box_block.h"

#include <gtest/gtest.h>

#include <vector>

#include "join/simd_filter.h"

namespace swiftspatial {
namespace {

TEST(BoxBlock, EmptyBlock) {
  const BoxBlock block;
  EXPECT_EQ(block.size(), 0u);
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(FilterMaskWords(block.size()), 0u);
  // Filtering an empty block is a no-op with no mask words to write.
  FilterBoxBlock(Box(0, 0, 1, 1), block, nullptr);

  const BoxBlock from_empty = BoxBlock::FromBoxes({});
  EXPECT_TRUE(from_empty.empty());
}

TEST(BoxBlock, FromBoxesPreservesCoordinatesAndIds) {
  const std::vector<Box> boxes = {Box(0, 1, 2, 3), Box(4, 5, 6, 7),
                                  Box(-1, -2, 3, 4)};
  const BoxBlock block = BoxBlock::FromBoxes(boxes);
  ASSERT_EQ(block.size(), boxes.size());
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(block.BoxAt(i), boxes[i]) << i;
    EXPECT_EQ(block.id(i), static_cast<ObjectId>(i)) << i;
    // The SoA arrays hold the same coordinates the AoS boxes do.
    EXPECT_EQ(block.min_x()[i], boxes[i].min_x);
    EXPECT_EQ(block.min_y()[i], boxes[i].min_y);
    EXPECT_EQ(block.max_x()[i], boxes[i].max_x);
    EXPECT_EQ(block.max_y()[i], boxes[i].max_y);
  }
}

TEST(BoxBlock, FromSubsetCarriesDatasetIds) {
  std::vector<Box> boxes;
  for (int i = 0; i < 10; ++i) {
    boxes.push_back(Box(static_cast<Coord>(i), 0, static_cast<Coord>(i + 1), 1));
  }
  const Dataset d("d", std::move(boxes));
  const std::vector<ObjectId> ids = {7, 2, 9};  // arbitrary order preserved
  const BoxBlock block = BoxBlock::FromSubset(d, ids);
  ASSERT_EQ(block.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(block.id(i), ids[i]);
    EXPECT_EQ(block.BoxAt(i), d.box(static_cast<std::size_t>(ids[i])));
  }
}

TEST(BoxBlock, AddAndClear) {
  BoxBlock block;
  block.Reserve(4);
  block.Add(Box(0, 0, 1, 1), 42);
  block.Add(Box(2, 2, 3, 3), 43);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block.id(0), 42);
  EXPECT_EQ(block.BoxAt(1), Box(2, 2, 3, 3));
  block.Clear();
  EXPECT_TRUE(block.empty());
  block.Add(Box(5, 5, 6, 6), 1);
  EXPECT_EQ(block.size(), 1u);
  EXPECT_EQ(block.id(0), 1);
}

// Tail handling: every size around the 8-wide AVX2 group and the 64-bit
// mask word boundary filters correctly when all candidates match.
TEST(BoxBlock, NonVectorWidthSizesFilterFully) {
  for (const std::size_t n :
       {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    BoxBlock block;
    block.Reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      block.Add(Box(0, 0, 1, 1), static_cast<ObjectId>(i));
    }
    std::vector<uint64_t> mask(FilterMaskWords(n), ~uint64_t{0});
    FilterBoxBlock(Box(0.5f, 0.5f, 2, 2), block, mask.data());
    std::size_t matches = 0;
    for (std::size_t i = 0; i < mask.size() * 64; ++i) {
      if ((mask[i >> 6] >> (i & 63)) & 1) {
        EXPECT_LT(i, n) << "match bit beyond block size";
        ++matches;
      }
    }
    EXPECT_EQ(matches, n) << "n=" << n;
  }
}

}  // namespace
}  // namespace swiftspatial
