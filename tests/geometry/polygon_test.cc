#include "geometry/polygon.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace swiftspatial {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(Polygon, MbrAndArea) {
  const Polygon p = UnitSquare();
  EXPECT_EQ(p.Mbr(), Box(0, 0, 1, 1));
  EXPECT_DOUBLE_EQ(p.SignedArea(), 1.0);
  EXPECT_TRUE(p.IsConvexCcw());
}

TEST(Polygon, ClockwiseIsNotCcw) {
  const Polygon p({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_LT(p.SignedArea(), 0.0);
  EXPECT_FALSE(p.IsConvexCcw());
}

TEST(PointInPolygon, InsideOutsideBoundary) {
  const Polygon p = UnitSquare();
  EXPECT_TRUE(PointInPolygon(Point{0.5, 0.5}, p));
  EXPECT_FALSE(PointInPolygon(Point{1.5, 0.5}, p));
  EXPECT_FALSE(PointInPolygon(Point{-0.1, 0.5}, p));
  // Boundary counts as inside.
  EXPECT_TRUE(PointInPolygon(Point{0, 0.5}, p));
  EXPECT_TRUE(PointInPolygon(Point{1, 1}, p));
}

TEST(PointInPolygon, ConcavePolygon) {
  // An L-shape: the notch is outside.
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(PointInPolygon(Point{0.5, 1.5}, l));
  EXPECT_TRUE(PointInPolygon(Point{1.5, 0.5}, l));
  EXPECT_FALSE(PointInPolygon(Point{1.5, 1.5}, l));
}

TEST(SegmentsIntersect, CrossingAndParallel) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Touching at an endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(PolygonsIntersect, OverlappingSquares) {
  const Polygon a = UnitSquare();
  const Polygon b({{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}});
  EXPECT_TRUE(PolygonsIntersect(a, b));
}

TEST(PolygonsIntersect, DisjointSquares) {
  const Polygon a = UnitSquare();
  const Polygon b({{3, 3}, {4, 3}, {4, 4}, {3, 4}});
  EXPECT_FALSE(PolygonsIntersect(a, b));
}

TEST(PolygonsIntersect, FullContainment) {
  const Polygon outer({{-1, -1}, {2, -1}, {2, 2}, {-1, 2}});
  const Polygon inner = UnitSquare();
  EXPECT_TRUE(PolygonsIntersect(outer, inner));
  EXPECT_TRUE(PolygonsIntersect(inner, outer));
}

TEST(PolygonsIntersect, MbrOverlapButGeometryDisjoint) {
  // A large lower-left triangle and a small triangle tucked into the
  // upper-right corner of its MBR: the MBRs overlap but the shapes do not.
  // The refinement phase exists exactly for this case.
  const Polygon a({{0, 0}, {10, 0}, {0, 10}});
  const Polygon b({{9, 9}, {10, 9}, {10, 10}});
  EXPECT_TRUE(Intersects(a.Mbr(), b.Mbr()));
  EXPECT_FALSE(PolygonsIntersect(a, b));
}

class MakeConvexPolygonTest : public ::testing::TestWithParam<int> {};

TEST_P(MakeConvexPolygonTest, ConvexCcwTightMbr) {
  const int vertices = GetParam();
  Rng rng(99);
  for (uint64_t id = 0; id < 200; ++id) {
    const Box mbr(static_cast<Coord>(rng.Uniform(0, 100)),
                  static_cast<Coord>(rng.Uniform(0, 100)),
                  static_cast<Coord>(rng.Uniform(100, 200)),
                  static_cast<Coord>(rng.Uniform(100, 200)));
    const Polygon p = MakeConvexPolygon(id, mbr, vertices);
    EXPECT_EQ(p.size(), static_cast<std::size_t>(vertices));
    EXPECT_TRUE(p.IsConvexCcw()) << "id=" << id;
    const Box got = p.Mbr();
    EXPECT_NEAR(got.min_x, mbr.min_x, 1e-3);
    EXPECT_NEAR(got.min_y, mbr.min_y, 1e-3);
    EXPECT_NEAR(got.max_x, mbr.max_x, 1e-3);
    EXPECT_NEAR(got.max_y, mbr.max_y, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(VertexCounts, MakeConvexPolygonTest,
                         ::testing::Values(4, 6, 8, 12, 16, 32));

TEST(MakeConvexPolygon, DeterministicPerId) {
  const Box mbr(0, 0, 10, 10);
  const Polygon a = MakeConvexPolygon(42, mbr, 8);
  const Polygon b = MakeConvexPolygon(42, mbr, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.vertices()[i], b.vertices()[i]);
  }
  const Polygon c = MakeConvexPolygon(43, mbr, 8);
  bool identical = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.vertices()[i] == c.vertices()[i])) identical = false;
  }
  EXPECT_FALSE(identical) << "different ids must differ";
}

}  // namespace
}  // namespace swiftspatial
