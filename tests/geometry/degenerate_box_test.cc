// Regression tests for degenerate boxes: zero-area (point) boxes, edge- and
// corner-touching rectangles, and inverted min/max boxes. The partition
// drivers' reference-point deduplication (ReferencePointInTile +
// CloseLastTile) depends on these exact boundary semantics, so each
// property is pinned here: closed-boundary intersection, the
// exactly-one-tile guarantee for reference points on tile edges, and
// end-to-end agreement of the partitioned join with brute force on
// degenerate data.
#include <gtest/gtest.h>

#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"
#include "grid/uniform_grid.h"
#include "join/nested_loop.h"
#include "join/partitioned_driver.h"
#include "join/result.h"

namespace swiftspatial {
namespace {

// ---------------------------------------------------------------------------
// Zero-area boxes.
// ---------------------------------------------------------------------------

TEST(DegenerateBox, ZeroAreaBoxIsNotEmpty) {
  const Box point(5, 5, 5, 5);
  EXPECT_FALSE(point.IsEmpty());  // a point is a valid (degenerate) box
  EXPECT_DOUBLE_EQ(point.Area(), 0.0);
  EXPECT_FLOAT_EQ(point.Width(), 0);
  EXPECT_FLOAT_EQ(point.Height(), 0);
}

TEST(DegenerateBox, PointBoxIntersection) {
  const Box point(5, 5, 5, 5);
  // A point on a rectangle's boundary intersects it (closed boundaries).
  EXPECT_TRUE(Intersects(point, Box(5, 5, 10, 10)));   // at min corner
  EXPECT_TRUE(Intersects(point, Box(0, 0, 5, 5)));     // at max corner
  EXPECT_TRUE(Intersects(point, Box(0, 5, 10, 5)));    // on a zero-height line
  EXPECT_TRUE(Intersects(point, point));               // self
  EXPECT_FALSE(Intersects(point, Box(5.001f, 5, 10, 10)));
  // Intersection of coincident points is the point itself.
  EXPECT_EQ(Intersection(point, point), point);
  EXPECT_FALSE(Intersection(point, point).IsEmpty());
}

// ---------------------------------------------------------------------------
// Touching edges.
// ---------------------------------------------------------------------------

TEST(DegenerateBox, TouchingEdgesIntersect) {
  const Box left(0, 0, 5, 5);
  const Box right(5, 0, 10, 5);   // shares the x=5 edge
  const Box above(0, 5, 5, 10);   // shares the y=5 edge
  const Box corner(5, 5, 10, 10); // shares only the (5,5) corner
  EXPECT_TRUE(Intersects(left, right));
  EXPECT_TRUE(Intersects(left, above));
  EXPECT_TRUE(Intersects(left, corner));

  // The shared region is a degenerate (zero-width / zero-area) box, not an
  // empty one: the reference-point rule relies on it having valid min
  // coordinates.
  EXPECT_EQ(Intersection(left, right), Box(5, 0, 5, 5));
  EXPECT_FALSE(Intersection(left, right).IsEmpty());
  EXPECT_EQ(Intersection(left, corner), Box(5, 5, 5, 5));
}

// ---------------------------------------------------------------------------
// Inverted min/max boxes.
// ---------------------------------------------------------------------------

TEST(DegenerateBox, InvertedBoxIsEmpty) {
  const Box inverted(5, 5, 3, 3);  // min > max on both axes
  EXPECT_TRUE(inverted.IsEmpty());
  EXPECT_DOUBLE_EQ(inverted.Area(), 0.0);
  EXPECT_DOUBLE_EQ(inverted.Perimeter(), 0.0);
  // The hardware predicate is the raw four-way comparison (Fig. 3) and does
  // NOT special-case inverted boxes: an inverted box still "intersects" a
  // box covering its span. Pinned here because the dedup rule and the join
  // algorithms rely on inputs being valid (min <= max) boxes -- datasets
  // must never contain inverted boxes.
  EXPECT_TRUE(Intersects(inverted, Box(0, 0, 10, 10)));
  // Against itself the comparisons fail (max < min on both axes).
  EXPECT_FALSE(Intersects(inverted, inverted));
  // Disjoint boxes produce exactly this inverted/empty shape from
  // Intersection(); IsEmpty() is the canonical disjointness check.
  EXPECT_TRUE(Intersection(Box(0, 0, 1, 1), Box(3, 3, 4, 4)).IsEmpty());
  // Expand with an inverted box keeps Box::Empty() the Expand identity.
  Box e = Box::Empty();
  e.Expand(inverted);
  EXPECT_TRUE(e.IsEmpty());
}

// ---------------------------------------------------------------------------
// Reference-point dedup on boundaries: for any qualifying pair, exactly one
// grid tile claims it, even when the reference point sits exactly on a tile
// edge or on the global extent boundary.
// ---------------------------------------------------------------------------

int ClaimingTiles(const Box& r, const Box& s, const UniformGrid& grid) {
  int claims = 0;
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (ReferencePointInTile(r, s, grid.DedupTileByIndex(t))) ++claims;
  }
  return claims;
}

TEST(DegenerateBox, ReferencePointClaimedByExactlyOneTile) {
  const Box extent(0, 0, 8, 8);
  const UniformGrid grid(extent, 4, 4);  // tile edges at 0, 2, 4, 6, 8

  struct Case {
    const char* label;
    Box r, s;
  };
  const Case cases[] = {
      {"interior pair", Box(1, 1, 3, 3), Box(2.5, 2.5, 5, 5)},
      {"reference point on a tile edge", Box(2, 2, 3, 3), Box(2, 2, 5, 5)},
      {"edge-touching pair (zero-width intersection)", Box(0, 0, 2, 2),
       Box(2, 0, 4, 2)},
      {"corner-touching pair (point intersection)", Box(0, 0, 2, 2),
       Box(2, 2, 4, 4)},
      {"coincident points", Box(4, 4, 4, 4), Box(4, 4, 4, 4)},
      {"point on the global max boundary", Box(8, 8, 8, 8), Box(6, 6, 8, 8)},
      {"pair spanning the whole extent", Box(0, 0, 8, 8), Box(0, 0, 8, 8)},
      {"reference point at the extent max corner", Box(7, 7, 8, 8),
       Box(8, 8, 8, 8)},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(Intersects(c.r, c.s)) << c.label;
    EXPECT_EQ(ClaimingTiles(c.r, c.s, grid), 1) << c.label;
  }
}

TEST(DegenerateBox, CloseLastTileIsIndexDriven) {
  constexpr Coord kInf = std::numeric_limits<Coord>::infinity();
  const Box tile(2, 2, 4, 4);
  EXPECT_EQ(CloseLastTile(tile, false, false), tile);
  EXPECT_EQ(CloseLastTile(tile, true, false), Box(2, 2, kInf, 4));
  EXPECT_EQ(CloseLastTile(tile, false, true), Box(2, 2, 4, kInf));
  EXPECT_EQ(CloseLastTile(tile, true, true), Box(2, 2, kInf, kInf));
}

// ---------------------------------------------------------------------------
// End-to-end: the partitioned driver on degenerate data must agree with
// brute force -- every pair found once, none dropped at cell boundaries.
// ---------------------------------------------------------------------------

TEST(DegenerateBox, PartitionedJoinHandlesDegenerateData) {
  // A hostile mix: coincident points, points on what will be cell edges,
  // zero-width lines, edge-touching rectangles, and full-extent spans.
  std::vector<Box> r_boxes = {
      Box(2, 2, 2, 2),  Box(2, 2, 2, 2),   // duplicate coincident points
      Box(4, 4, 4, 4),                     // point on a likely cell corner
      Box(0, 0, 0, 8),                     // zero-width vertical line
      Box(0, 4, 8, 4),                     // zero-height horizontal line
      Box(0, 0, 4, 4),  Box(4, 4, 8, 8),   // corner-touching squares
      Box(0, 0, 8, 8),                     // the whole extent
  };
  std::vector<Box> s_boxes = {
      Box(2, 2, 2, 2),                     // coincident with two R points
      Box(4, 0, 4, 8),                     // zero-width line through centre
      Box(4, 4, 8, 8),                     // touches several R objects
      Box(8, 8, 8, 8),                     // point at the extent max corner
      Box(1, 1, 3, 3),
  };
  const Dataset r("degenerate_r", std::move(r_boxes));
  const Dataset s("degenerate_s", std::move(s_boxes));

  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_GT(expected.size(), 0u);

  for (const int grid_side : {1, 2, 4, 8}) {
    PartitionedDriverOptions options;
    options.grid_cols = grid_side;
    options.grid_rows = grid_side;
    options.num_threads = 2;
    PartitionedDriver driver(options);
    ASSERT_TRUE(driver.Plan(r, s).ok());
    JoinResult got = driver.Execute();
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
        << "grid " << grid_side << "x" << grid_side << ": expected "
        << expected.size() << " pairs, got " << got.size();
  }
}

// ---------------------------------------------------------------------------
// Float-rounded cell edges: grid lines over a [0,1] extent at sides that are
// not powers of two (1/10, 1/7, ...) are not float-representable, so the
// Coord-rounded tile edge can sit one ULP to either side of the double grid
// line the cell-index arithmetic uses. An object placed exactly on such a
// rounded edge historically got assigned only to the cell the double index
// picked, while the reference-point rule (which compares against the rounded
// edges) claimed the pair for the neighbour -- silently dropping it. Placing
// coincident point pairs on every rounded interior corner pins the fix.
// ---------------------------------------------------------------------------

TEST(DegenerateBox, PartitionedJoinKeepsPairsOnFloatRoundedCellEdges) {
  for (const int side : {7, 10, 13}) {
    const UniformGrid grid(Box(0, 0, 1, 1), side, side);
    // Corner anchors force the driver's derived extent to exactly [0,1]^2 so
    // its internal grid reproduces `grid`'s rounded edges.
    std::vector<Box> r_boxes = {Box(0, 0, 0, 0), Box(1, 1, 1, 1)};
    std::vector<Box> s_boxes = {Box(0, 0, 0, 0), Box(1, 1, 1, 1)};
    for (int k = 1; k < side; ++k) {
      const Box tile = grid.TileBox(k, k);
      r_boxes.push_back(Box(tile.min_x, tile.min_y, tile.min_x, tile.min_y));
      s_boxes.push_back(Box(tile.min_x, tile.min_y, tile.min_x, tile.min_y));
    }
    const Dataset r("edge_r", std::move(r_boxes));
    const Dataset s("edge_s", std::move(s_boxes));
    JoinResult expected = BruteForceJoin(r, s);
    // At least one pair per rounded corner (its coincident partner in S).
    ASSERT_GE(expected.size(), static_cast<std::size_t>(side + 1));

    PartitionedDriverOptions options;
    options.grid_cols = side;
    options.grid_rows = side;
    options.num_threads = 2;
    PartitionedDriver driver(options);
    ASSERT_TRUE(driver.Plan(r, s).ok());
    JoinResult got = driver.Execute();
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
        << side << "x" << side << " grid: expected " << expected.size()
        << " pairs, got " << got.size();
  }
}

// A degenerate (zero-width) extent collapses every grid column onto one
// line; assignment and the dedup rule must agree on which column claims.
TEST(DegenerateBox, PartitionedJoinOnZeroWidthExtent) {
  std::vector<Box> line;
  for (int i = 0; i <= 8; ++i) {
    line.push_back(Box(5, static_cast<Coord>(i), 5, static_cast<Coord>(i)));
  }
  const Dataset r("line_r", std::vector<Box>(line));
  const Dataset s("line_s", std::move(line));
  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_EQ(expected.size(), 9u);

  for (const int side : {1, 3, 4}) {
    PartitionedDriverOptions options;
    options.grid_cols = side;
    options.grid_rows = side;
    PartitionedDriver driver(options);
    ASSERT_TRUE(driver.Plan(r, s).ok());
    JoinResult got = driver.Execute();
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
        << side << "x" << side << " grid: expected " << expected.size()
        << " pairs, got " << got.size();
  }
}

}  // namespace
}  // namespace swiftspatial
