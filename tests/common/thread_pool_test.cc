#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace swiftspatial {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

class ParallelForTest
    : public ::testing::TestWithParam<std::tuple<Schedule, std::size_t>> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const auto [schedule, threads] = GetParam();
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, threads, schedule,
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForTest, WorkerIdsInRange) {
  const auto [schedule, threads] = GetParam();
  std::atomic<bool> bad{false};
  ParallelForWorker(500, threads, schedule,
                    [&bad, threads = threads](std::size_t, std::size_t w) {
                      if (w >= threads) bad = true;
                    });
  EXPECT_FALSE(bad.load());
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndThreads, ParallelForTest,
    ::testing::Combine(::testing::Values(Schedule::kStatic,
                                         Schedule::kDynamic),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

TEST(ParallelFor, ZeroIterations) {
  int runs = 0;
  ParallelFor(0, 4, Schedule::kDynamic, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  // With one thread, iterations must run on the calling thread in order.
  std::vector<std::size_t> order;
  ParallelFor(10, 1, Schedule::kStatic,
              [&order](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, DynamicChunking) {
  const std::size_t n = 97;  // not a multiple of the chunk
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(
      n, 3, Schedule::kDynamic, [&hits](std::size_t i) { hits[i].fetch_add(1); },
      /*chunk=*/8);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<int>(n));
}

TEST(ScheduleToString, Names) {
  EXPECT_STREQ(ScheduleToString(Schedule::kStatic), "static");
  EXPECT_STREQ(ScheduleToString(Schedule::kDynamic), "dynamic");
}

}  // namespace
}  // namespace swiftspatial
