#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

namespace swiftspatial {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// Contract: a task submitted from inside a running task is covered by any
// Wait() covering the submitting task -- the child is counted before the
// parent retires, so outstanding cannot touch zero in between. The
// exec::TaskGraph scheduler depends on this to grow graphs dynamically.
TEST(ThreadPool, SubmitFromInsideTaskIsCoveredByWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  // Recursive fan-out: 1 root -> 3 children -> 9 grandchildren -> ...
  std::function<void(int)> spawn = [&](int depth) {
    counter.fetch_add(1);
    if (depth == 0) return;
    for (int i = 0; i < 3; ++i) {
      pool.Submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  pool.Submit([&spawn] { spawn(4); });
  pool.Wait();
  // 1 + 3 + 9 + 27 + 81 tasks must all have run before Wait returned.
  EXPECT_EQ(counter.load(), 121);
}

// Contract: Wait() may race with Submit() from other external threads; every
// task submitted before the Wait began must be covered. Stress both sides.
TEST(ThreadPool, ConcurrentSubmitDuringWaitStress) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kRounds = 50;
  constexpr int kPerRound = 20;
  std::thread submitter([&] {
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kPerRound; ++i) {
        pool.Submit([&done] { done.fetch_add(1); });
      }
    }
  });
  // Interleave Waits with the submitter; each Wait must return (no hang) at
  // some quiescent instant.
  for (int i = 0; i < 10; ++i) pool.Wait();
  submitter.join();
  pool.Wait();  // everything was submitted before this Wait began
  EXPECT_EQ(done.load(), kRounds * kPerRound);
}

TEST(ThreadPool, CurrentWorkerIndexInsideAndOutsideTasks) {
  ThreadPool pool(3);
  ThreadPool other(2);
  EXPECT_EQ(pool.CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  std::atomic<bool> bad{false};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      const std::size_t w = pool.CurrentWorkerIndex();
      if (w >= pool.num_threads()) bad = true;
      // From pool's worker, `other` must not claim the thread as its own.
      if (other.CurrentWorkerIndex() != ThreadPool::kNotAWorker) bad = true;
    });
  }
  pool.Wait();
  EXPECT_FALSE(bad.load());
}

class ParallelForTest
    : public ::testing::TestWithParam<std::tuple<Schedule, std::size_t>> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const auto [schedule, threads] = GetParam();
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, threads, schedule,
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForTest, WorkerIdsInRange) {
  const auto [schedule, threads] = GetParam();
  std::atomic<bool> bad{false};
  ParallelForWorker(500, threads, schedule,
                    [&bad, threads = threads](std::size_t, std::size_t w) {
                      if (w >= threads) bad = true;
                    });
  EXPECT_FALSE(bad.load());
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndThreads, ParallelForTest,
    ::testing::Combine(::testing::Values(Schedule::kStatic,
                                         Schedule::kDynamic),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

TEST(ParallelFor, ZeroIterations) {
  int runs = 0;
  ParallelFor(0, 4, Schedule::kDynamic, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  // With one thread, iterations must run on the calling thread in order.
  std::vector<std::size_t> order;
  ParallelFor(10, 1, Schedule::kStatic,
              [&order](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, DynamicChunking) {
  const std::size_t n = 97;  // not a multiple of the chunk
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(
      n, 3, Schedule::kDynamic, [&hits](std::size_t i) { hits[i].fetch_add(1); },
      /*chunk=*/8);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<int>(n));
}

TEST(ScheduleToString, Names) {
  EXPECT_STREQ(ScheduleToString(Schedule::kStatic), "static");
  EXPECT_STREQ(ScheduleToString(Schedule::kDynamic), "dynamic");
}

}  // namespace
}  // namespace swiftspatial
