#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace swiftspatial {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace swiftspatial
