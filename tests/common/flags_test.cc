#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace swiftspatial {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()));
}

TEST(Flags, ParsesKeyValue) {
  const Flags f = ParseArgs({"--scale=100000", "--name=osm"});
  EXPECT_EQ(f.GetInt("scale", 0), 100000);
  EXPECT_EQ(f.GetString("name", ""), "osm");
}

TEST(Flags, BooleanForms) {
  const Flags f = ParseArgs({"--full", "--verbose=false", "--fast=0"});
  EXPECT_TRUE(f.GetBool("full", false));
  EXPECT_FALSE(f.GetBool("verbose", true));
  EXPECT_FALSE(f.GetBool("fast", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("missing", true));
  EXPECT_EQ(f.GetString("missing", "dft"), "dft");
  EXPECT_FALSE(f.Has("missing"));
}

TEST(Flags, DoubleParsing) {
  const Flags f = ParseArgs({"--ratio=2.75"});
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0), 2.75);
}

TEST(Flags, NonFlagArgumentsIgnored) {
  const Flags f = ParseArgs({"positional", "--x=1", "-y=2"});
  EXPECT_TRUE(f.Has("x"));
  EXPECT_FALSE(f.Has("y"));
  EXPECT_FALSE(f.Has("positional"));
}

}  // namespace
}  // namespace swiftspatial
