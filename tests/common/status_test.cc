#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace swiftspatial {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad node size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad node size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad node size");
}

TEST(Status, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r->append("def");
  EXPECT_EQ(r.value(), "abcdef");
}

Status Fails() { return Status::Aborted("stop"); }
Status Propagates() {
  SWIFT_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates().code(), StatusCode::kAborted);
}

TEST(Status, IgnoreErrorDiscardsExplicitly) {
  // The one sanctioned way to drop a status (lint-allowlisted at real call
  // sites); here it pins that the member compiles and is a no-op.
  Fails().IgnoreError();
  Status s = Status::OK();
  s.IgnoreError();  // ok statuses may be ignored too
  EXPECT_TRUE(s.ok());
}

// --- Result<T> error-path contract -----------------------------------------

// value() on an error Result is a programmer error: it must CHECK-fail with
// the carried status message (actionable), not throw bad_variant_access
// from deep inside std::variant (opaque).
using ResultDeathTest = ::testing::Test;

TEST(ResultDeathTest, ValueOnErrorCheckFailsWithStatusMessage) {
  Result<int> r(Status::NotFound("missing shard 7"));
  EXPECT_DEATH(r.value(), "NotFound: missing shard 7");
}

TEST(ResultDeathTest, ConstValueOnErrorCheckFails) {
  const Result<int> r(Status::IOError("disk gone"));
  EXPECT_DEATH(r.value(), "IOError: disk gone");
}

TEST(ResultDeathTest, DereferenceOnErrorCheckFails) {
  Result<std::string> r(Status::Aborted("cancelled"));
  EXPECT_DEATH(*r, "Aborted: cancelled");
  EXPECT_DEATH(r->clear(), "Aborted: cancelled");
}

TEST(ResultDeathTest, ConstructingFromOkStatusCheckFails) {
  // Result<T>(Status::OK()) carries no value; it is a contract violation,
  // not a representable state. (Named so the discarded-nodiscard error
  // cannot fire before the CHECK does.)
  EXPECT_DEATH(
      {
        Result<int> r(Status::OK());
        EXPECT_TRUE(r.ok());
      },
      "OK status carries no value");
}

TEST(Result, RvalueValueMovesOut) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

// Result<Status> is deleted at compile time (static_assert): both variant
// alternatives would be a Status and the converting constructors collide.
// Pinned by inspection here -- uncommenting the next line must not compile.
// Result<Status> ambiguous(Status::OK());

// --- SWIFT_ASSIGN_OR_RETURN -------------------------------------------------

Result<int> MakeValue(int v) { return v; }
Result<int> MakeError() { return Status::OutOfRange("too big"); }

Status AssignHappyPath(int* out) {
  SWIFT_ASSIGN_OR_RETURN(const int v, MakeValue(41));
  *out = v + 1;
  return Status::OK();
}

Status AssignErrorPath(int* out) {
  SWIFT_ASSIGN_OR_RETURN(const int v, MakeError());
  *out = v;  // unreachable
  return Status::OK();
}

TEST(AssignOrReturn, AssignsOnSuccess) {
  int out = 0;
  const Status s = AssignHappyPath(&out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out, 42);
}

TEST(AssignOrReturn, PropagatesErrorWithoutAssigning) {
  int out = -1;
  const Status s = AssignErrorPath(&out);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "too big");
  EXPECT_EQ(out, -1);
}

Status AssignToExistingLvalue(int* out) {
  int v = 0;
  SWIFT_ASSIGN_OR_RETURN(v, MakeValue(5));
  SWIFT_ASSIGN_OR_RETURN(v, MakeValue(v + 2));  // reuse, different line
  *out = v;
  return Status::OK();
}

TEST(AssignOrReturn, AssignsToExistingLvalueAndStacks) {
  int out = 0;
  ASSERT_TRUE(AssignToExistingLvalue(&out).ok());
  EXPECT_EQ(out, 7);
}

// Double-evaluation pitfall: the expression must be evaluated exactly once,
// even though the macro names it twice internally.
Status AssignCountingCalls(int* calls, int* out) {
  SWIFT_ASSIGN_OR_RETURN(*out, MakeValue(++*calls));
  return Status::OK();
}

TEST(AssignOrReturn, EvaluatesExpressionExactlyOnce) {
  int calls = 0;
  int out = 0;
  ASSERT_TRUE(AssignCountingCalls(&calls, &out).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(out, 1);
}

Status ReturnIfErrorCountingCalls(int* calls) {
  SWIFT_RETURN_IF_ERROR(((++*calls), Status::OK()));
  return Status::OK();
}

TEST(ReturnIfError, EvaluatesExpressionExactlyOnce) {
  int calls = 0;
  ASSERT_TRUE(ReturnIfErrorCountingCalls(&calls).ok());
  EXPECT_EQ(calls, 1);
}

// Shadowing pitfall: the macro's internal temporary must not capture an
// outer variable named like the assignment target -- `ASSIGN(auto x, F(x))`
// has to read the *outer* x when evaluating F.
Status AssignNoSelfCapture(int* out) {
  int v = 10;
  SWIFT_ASSIGN_OR_RETURN(auto doubled, MakeValue(v * 2));
  v = doubled;
  *out = v;
  return Status::OK();
}

TEST(AssignOrReturn, OuterVariableVisibleInExpression) {
  int out = 0;
  ASSERT_TRUE(AssignNoSelfCapture(&out).ok());
  EXPECT_EQ(out, 20);
}

Status AssignMoveOnly(std::unique_ptr<int>* out) {
  SWIFT_ASSIGN_OR_RETURN(
      *out, Result<std::unique_ptr<int>>(std::make_unique<int>(3)));
  return Status::OK();
}

TEST(AssignOrReturn, MovesMoveOnlyValues) {
  std::unique_ptr<int> p;
  ASSERT_TRUE(AssignMoveOnly(&p).ok());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 3);
}

}  // namespace
}  // namespace swiftspatial
