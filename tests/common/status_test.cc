#include "common/status.h"

#include <gtest/gtest.h>

namespace swiftspatial {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad node size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad node size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad node size");
}

TEST(Status, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r->append("def");
  EXPECT_EQ(r.value(), "abcdef");
}

Status Fails() { return Status::Aborted("stop"); }
Status Propagates() {
  SWIFT_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates().code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace swiftspatial
