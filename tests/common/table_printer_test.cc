#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/stopwatch.h"

namespace swiftspatial {
namespace {

std::string Render(TablePrinter& table) {
  std::FILE* f = std::tmpfile();
  table.Print(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) out += buf;
  std::fclose(f);
  return out;
}

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter table("demo", {"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = Render(table);
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| beta "), std::string::npos);
}

TEST(TablePrinter, ColumnsPadToWidestCell) {
  TablePrinter table("", {"x"});
  table.AddRow({"longest-cell"});
  table.AddRow({"s"});
  const std::string out = Render(table);
  // The short row must be padded to the widest cell's width.
  EXPECT_NE(out.find("| s            |"), std::string::npos);
}

TEST(TablePrinter, FmtHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::FmtSci(12345.678, 2), "1.23e+04");
}

TEST(TablePrinter, EmptyTitleOmitted) {
  TablePrinter table("", {"a"});
  table.AddRow({"1"});
  const std::string out = Render(table);
  EXPECT_EQ(out.find("=="), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little CPU deterministically.
  volatile double acc = 0;
  // Plain assignment: compound assignment on volatile is deprecated (C++20).
  for (int i = 0; i < 2000000; ++i) acc = acc + i * 0.5;
  const double first = sw.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(sw.ElapsedMillis(), first * 1e3);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), first + 1.0);
  EXPECT_GE(sw.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace swiftspatial
