// Node runtime lifecycle: concurrent Join() idempotence. Regression test
// for an unguarded `joined_` flag -- Cluster::JoinAll racing ~Node (or any
// two Join callers) could double-join the runtime thread (std::terminate)
// or return from Join() before the thread actually retired. Join() now
// serializes through std::call_once; the TSan job runs this file.
#include "dist/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dist/exchange.h"
#include "dist/shard_planner.h"

namespace swiftspatial::dist {
namespace {

TEST(Node, ConcurrentJoinIsIdempotentAndRaceFree) {
  // Many rounds: the old bug was a narrow window (both callers reading
  // joined_ == false), so one iteration rarely trips it even under TSan.
  for (int round = 0; round < 25; ++round) {
    Exchange exchange(1, LinkConfig{});
    const std::vector<Shard> shards;
    Node node(
        0, NodeOptions{}, &shards, &exchange,
        [](const Shard&, std::vector<ResultPair>*, JoinStats*, double*) {
          return Status::OK();
        },
        /*chunk_pairs=*/16, FaultPlan{}, exec::CancellationToken{});
    node.CloseInput();

    std::atomic<int> returned{0};
    std::vector<std::thread> joiners;
    for (int i = 0; i < 4; ++i) {
      joiners.emplace_back([&] {
        node.Join();
        // Every Join() return -- not just the first -- must imply the
        // runtime thread retired, so the node's stats are final and safe
        // to read without racing the runtime.
        EXPECT_FALSE(node.stats().failed);
        returned.fetch_add(1);
      });
    }
    for (auto& t : joiners) t.join();
    EXPECT_EQ(returned.load(), 4);

    // The retired node sent exactly one terminal message.
    Message msg;
    int terminals = 0;
    while (exchange.Recv(&msg)) {
      if (msg.kind == Message::Kind::kNodeDone) ++terminals;
    }
    EXPECT_EQ(terminals, 1);
    // ~Node Join()s again on scope exit: still a no-op, never a re-join.
  }
}

TEST(Cluster, JoinAllRacingDestructionIsSafe) {
  for (int round = 0; round < 10; ++round) {
    Exchange exchange(2, LinkConfig{});
    const std::vector<Shard> shards;
    {
      Cluster cluster(
          2, NodeOptions{}, &shards, &exchange,
          [](const Shard&, std::vector<ResultPair>*, JoinStats*, double*) {
            return Status::OK();
          },
          /*chunk_pairs=*/16, FaultPlan{}, exec::CancellationToken{});
      cluster.CloseAllInputs();
      // Two threads racing JoinAll, then the scope-exit destructors Join a
      // third time each -- all must coexist without double-joining.
      std::thread a([&] { cluster.JoinAll(); });
      std::thread b([&] { cluster.JoinAll(); });
      a.join();
      b.join();
    }
    // Both nodes retired cleanly: their terminal messages closed the links.
    Message msg;
    int terminals = 0;
    while (exchange.Recv(&msg)) {
      if (msg.kind == Message::Kind::kNodeDone) ++terminals;
    }
    EXPECT_EQ(terminals, 2);
  }
}

}  // namespace
}  // namespace swiftspatial::dist
