// ShardPlanner properties: shard identity is stable and grid-derived, every
// placement policy covers all populated tiles exactly once, cost balancing
// measurably beats round-robin on skewed work, and Hilbert-clustered
// locality placement measurably cuts boundary-object replication.
#include "dist/shard_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "join/partitioned_driver.h"
#include "tests/test_util.h"

namespace swiftspatial::dist {
namespace {

uint64_t MaxNodeCost(const ShardPlan& plan) {
  uint64_t worst = 0;
  for (uint64_t c : plan.node_cost) worst = std::max(worst, c);
  return worst;
}

TEST(ShardPlanner, DeterministicAndCoversEachPopulatedTileOnce) {
  const Dataset r = testutil::Uniform(500, 21);
  const Dataset s = testutil::Skewed(500, 22);
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kCostBalanced,
        PlacementPolicy::kLocality}) {
    auto a = PlanShards(r, s, 8, 8, 4, policy);
    auto b = PlanShards(r, s, 8, 8, 4, policy);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());

    // Stable identity: same shards, same ids, same owners on every run.
    ASSERT_EQ(a->shards.size(), b->shards.size());
    ASSERT_EQ(a->owner, b->owner);
    std::set<int> ids;
    for (std::size_t i = 0; i < a->shards.size(); ++i) {
      const Shard& shard = a->shards[i];
      EXPECT_EQ(shard.id, b->shards[i].id);
      EXPECT_GE(shard.id, 0);
      EXPECT_LT(shard.id, 64);
      EXPECT_TRUE(ids.insert(shard.id).second) << "duplicate tile claim";
      EXPECT_FALSE(shard.r_ids.empty());
      EXPECT_FALSE(shard.s_ids.empty());
      ASSERT_LT(static_cast<std::size_t>(a->owner[i]), 4u);
    }

    // node_cost is exactly the per-owner sum of shard costs.
    std::vector<uint64_t> recomputed(4, 0);
    for (std::size_t i = 0; i < a->shards.size(); ++i) {
      recomputed[static_cast<std::size_t>(a->owner[i])] +=
          a->shards[i].EstimatedCost();
    }
    EXPECT_EQ(recomputed, a->node_cost)
        << PlacementPolicyToString(policy);
  }
}

TEST(ShardPlanner, RoundRobinDealsShardsCyclically) {
  const Dataset r = testutil::Uniform(800, 23);
  const Dataset s = testutil::Uniform(800, 24);
  auto plan = PlanShards(r, s, 6, 6, 3, PlacementPolicy::kRoundRobin);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->shards.size(), 3u);
  for (std::size_t i = 0; i < plan->shards.size(); ++i) {
    EXPECT_EQ(plan->owner[i], static_cast<int>(i % 3));
  }
}

TEST(ShardPlanner, CostBalancedNarrowsMaxLoadOnSkewedWork) {
  // Heavy-tailed cluster sizes make per-shard costs wildly uneven; cyclic
  // dealing lands whole hot cells on unlucky nodes while LPT spreads them.
  const Dataset r = testutil::Skewed(1500, 25);
  const Dataset s = testutil::Skewed(1500, 26);
  auto rr = PlanShards(r, s, 8, 8, 4, PlacementPolicy::kRoundRobin);
  auto lpt = PlanShards(r, s, 8, 8, 4, PlacementPolicy::kCostBalanced);
  ASSERT_TRUE(rr.ok());
  ASSERT_TRUE(lpt.ok());
  EXPECT_LT(MaxNodeCost(*lpt), MaxNodeCost(*rr));
}

TEST(ShardPlanner, LocalityPlacementCutsBoundaryReplication) {
  // Objects large relative to the cell span straddle grid lines often, so
  // placement adjacency dominates the replica bill: round-robin separates
  // every pair of neighbouring cells, Hilbert-clustered runs keep compact
  // regions per node.
  const Dataset r = testutil::Uniform(2000, 27, /*map=*/1000.0,
                                      /*max_edge=*/40.0);
  const Dataset s = testutil::Uniform(2000, 28, /*map=*/1000.0,
                                      /*max_edge=*/40.0);
  auto rr = PlanShards(r, s, 8, 8, 8, PlacementPolicy::kRoundRobin);
  auto local = PlanShards(r, s, 8, 8, 8, PlacementPolicy::kLocality);
  ASSERT_TRUE(rr.ok());
  ASSERT_TRUE(local.ok());
  EXPECT_GT(rr->replicated_objects, 0u);
  EXPECT_LT(local->replicated_objects, rr->replicated_objects);
  EXPECT_LT(local->input_bytes, rr->input_bytes);
  // Locality stays cost-aware: its balance must not collapse (within 3x of
  // the LPT optimum on this uniform workload).
  auto lpt = PlanShards(r, s, 8, 8, 8, PlacementPolicy::kCostBalanced);
  ASSERT_TRUE(lpt.ok());
  EXPECT_LE(MaxNodeCost(*local), 3 * MaxNodeCost(*lpt));
}

TEST(ShardPlanner, AutoGridAndEmptyAndInvalidInputs) {
  const Dataset r = testutil::Uniform(300, 29);
  const Dataset s = testutil::Uniform(300, 30);
  auto plan = PlanShards(r, s, 0, 0, 4, PlacementPolicy::kCostBalanced);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->grid_cols, 0);
  EXPECT_EQ(plan->grid_cols, plan->grid_rows);
  EXPECT_FALSE(plan->shards.empty());

  const Dataset empty;
  auto none = PlanShards(empty, s, 0, 0, 4, PlacementPolicy::kRoundRobin);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->shards.empty());

  EXPECT_FALSE(PlanShards(r, s, 0, 0, 0,
                          PlacementPolicy::kRoundRobin).ok());
  EXPECT_FALSE(PlanShards(r, s, -2, 4, 2,
                          PlacementPolicy::kRoundRobin).ok());
}

// All grid-sharding planners must derive the *identical* grid for the same
// inputs -- shard-id stability across the synchronous PartitionedDriver,
// the banded streaming executor, and the distributed ShardPlanner depends
// on it. This pins the consolidation of the three formerly-duplicated
// auto-sizing call sites behind DeriveJoinGrid: the helper's decision and
// both planners' decisions must agree, for auto-sized and explicit grids,
// across input scales.
TEST(ShardPlanner, GridDecisionIdenticalAcrossAllPlanners) {
  struct Case {
    uint64_t scale;
    int cols;
    int rows;
  };
  for (const Case& c : {Case{60, 0, 0}, Case{500, 0, 0}, Case{3000, 0, 0},
                        Case{500, 9, 5}}) {
    const Dataset r = testutil::Uniform(c.scale, 100 + c.scale);
    const Dataset s = testutil::Skewed(c.scale, 200 + c.scale);

    const JoinGridSpec spec = DeriveJoinGrid(r, s, c.cols, c.rows);
    ASSERT_TRUE(spec.has_grid);

    PartitionedDriverOptions options;
    options.grid_cols = c.cols;
    options.grid_rows = c.rows;
    PartitionedDriver driver(options);
    ASSERT_TRUE(driver.Plan(r, s).ok());

    auto shard_plan =
        PlanShards(r, s, c.cols, c.rows, 4, PlacementPolicy::kRoundRobin);
    ASSERT_TRUE(shard_plan.ok());

    EXPECT_EQ(driver.grid_cols(), spec.cols)
        << "scale=" << c.scale << " cols=" << c.cols;
    EXPECT_EQ(driver.grid_rows(), spec.rows);
    EXPECT_EQ(shard_plan->grid_cols, spec.cols)
        << "scale=" << c.scale << " cols=" << c.cols;
    EXPECT_EQ(shard_plan->grid_rows, spec.rows);
  }

  // Empty inputs: one shared "no grid" decision.
  const Dataset empty;
  const Dataset some = testutil::Uniform(50, 7);
  EXPECT_FALSE(DeriveJoinGrid(empty, some, 0, 0).has_grid);
  EXPECT_FALSE(DeriveJoinGrid(some, empty, 4, 4).has_grid);
}

}  // namespace
}  // namespace swiftspatial::dist
