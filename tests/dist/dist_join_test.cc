// Distributed join correctness: every node count x placement policy must
// reproduce the brute-force multiset (cross-node reference-point dedup),
// including at ULP-collided grid edges (the determinism_test regime ported
// to the cluster); node failure mid-join must re-execute shards on
// survivors with dedup-identical results; cancellation mid-exchange must
// leave a well-defined delivered prefix of whole shards; and the dist-*
// engines must behave through the registry and the async streaming layer.
#include "dist/dist_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "dist/dist_engine.h"
#include "exec/streaming.h"
#include "join/engine.h"
#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial::dist {
namespace {

using ShardMap = std::map<int, std::vector<ResultPair>>;

ShardSink CollectInto(ShardMap* map) {
  return [map](int shard_id, std::vector<ResultPair> pairs) {
    auto& dst = (*map)[shard_id];
    dst.insert(dst.end(), pairs.begin(), pairs.end());
  };
}

TEST(DistributedJoin, EveryNodeCountAndPolicyMatchesBruteForce) {
  const Dataset r = testutil::Uniform(600, 51);
  const Dataset s = testutil::Skewed(600, 52);
  JoinResult expected = BruteForceJoin(r, s);

  for (const int nodes : {1, 2, 4, 8}) {
    for (const PlacementPolicy policy :
         {PlacementPolicy::kRoundRobin, PlacementPolicy::kCostBalanced,
          PlacementPolicy::kLocality}) {
      DistJoinOptions options;
      options.num_nodes = nodes;
      options.placement = policy;
      options.node_worker_threads = 2;
      JoinResult got;
      auto report = DistributedJoin(r, s, options, &got);
      ASSERT_TRUE(report.ok())
          << nodes << " nodes, " << PlacementPolicyToString(policy) << ": "
          << report.status().ToString();
      EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
          << nodes << " nodes, " << PlacementPolicyToString(policy)
          << ": expected " << expected.size() << " pairs, got "
          << got.size();
      EXPECT_EQ(report->num_results, got.size());
      EXPECT_EQ(report->nodes, static_cast<std::size_t>(nodes));
      EXPECT_EQ(report->failed_nodes, 0u);
      EXPECT_EQ(report->retried_shards, 0u);
    }
  }
}

TEST(DistributedJoin, AccelNodesMatchBruteForce) {
  const Dataset r = testutil::Uniform(300, 53);
  const Dataset s = testutil::Uniform(300, 54);
  JoinResult expected = BruteForceJoin(r, s);

  DistJoinOptions options;
  options.num_nodes = 3;
  options.use_accel = true;
  options.accel_join_units = 2;
  JoinResult got;
  JoinStats stats;
  auto report = DistributedJoin(r, s, options, &got, &stats);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
  EXPECT_GT(stats.predicate_evaluations, 0u);
  // Every node that executed shards reports modelled device time.
  double device_seconds = 0;
  for (const NodeStats& ns : report->node_stats) {
    device_seconds += ns.device_seconds;
  }
  EXPECT_GT(device_seconds, 0.0);
}

// The [2^24, 2^24+8] edge-collapse regime from tests/hw/determinism_test.cc
// ported to the cluster: a 16x16 grid over an 8-wide extent collapses runs
// of ~4 tile edges onto one representable float, and those collapsed-edge
// shards land on *different nodes*. Multi-assignment plus the shared
// CloseLastTile reference-point convention must still claim every
// boundary pair exactly once across the cluster, under every placement.
TEST(DistributedJoin, UlpCollidedGridEdgesClaimBoundaryPairsOnceAcrossNodes) {
  const Coord base = 16777216.0f;  // 2^24
  std::vector<Box> boxes;
  for (int i = 0; i <= 4; ++i) {
    const Coord gx = base + static_cast<Coord>(2 * i);
    for (int j = 0; j <= 4; ++j) {
      const Coord gy = base + static_cast<Coord>(2 * j);
      boxes.push_back(Box(gx, gy, gx, gy));
    }
    boxes.push_back(Box(gx, base + 1, gx, base + 3));  // vertical straddler
    boxes.push_back(Box(base + 1, gx, base + 3, gx));  // horizontal
  }
  const Dataset r("ulp_r", std::vector<Box>(boxes));
  const Dataset s("ulp_s", std::move(boxes));
  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_GT(expected.size(), r.size());  // edge-touching pairs exist

  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kCostBalanced,
        PlacementPolicy::kLocality}) {
    DistJoinOptions options;
    options.num_nodes = 4;
    options.placement = policy;
    options.grid_cols = 16;  // forces the collapsed-edge grid
    options.grid_rows = 16;
    JoinResult got;
    auto report = DistributedJoin(r, s, options, &got);
    ASSERT_TRUE(report.ok()) << PlacementPolicyToString(policy) << ": "
                             << report.status().ToString();
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
        << PlacementPolicyToString(policy) << ": expected "
        << expected.size() << " pairs, got " << got.size()
        << " (double-claim or drop at a collapsed edge)";
  }
}

// Node failure mid-join: the dead node's uncommitted shards re-execute on
// survivors and the merged multiset is identical to a failure-free run --
// no duplicated pairs from the partially-transmitted shard, nothing lost.
TEST(DistributedJoin, NodeFailureRetriesAreDedupIdenticalToFailureFreeRun) {
  const Dataset r = testutil::Uniform(800, 55);
  const Dataset s = testutil::Uniform(800, 56);

  DistJoinOptions options;
  options.num_nodes = 4;
  options.grid_cols = 6;
  options.grid_rows = 6;
  options.chunk_pairs = 16;  // several chunks per shard: partial delivery

  JoinResult clean;
  auto clean_report = DistributedJoin(r, s, options, &clean);
  ASSERT_TRUE(clean_report.ok());
  ASSERT_GT(clean_report->shards, 8u);

  options.fault.fail_node = 0;
  options.fault.fail_after_shards = 2;  // dies mid-transmission of shard 3
  ShardMap delivered;
  JoinResult faulty;
  auto report =
      DistributedJoin(r, s, options, &faulty, nullptr,
                      CollectInto(&delivered));
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->failed_nodes, 1u);
  EXPECT_GT(report->retried_shards, 0u);
  ASSERT_TRUE(report->node_stats[0].failed);
  EXPECT_TRUE(JoinResult::SameMultiset(clean, faulty))
      << "retried shards diverged: clean " << clean.size() << " pairs, "
      << "with failure " << faulty.size();

  // Retries actually ran on survivors, and each shard id was delivered to
  // the sink exactly once (the ShardMap would have merged duplicates, so
  // cross-check the total).
  std::size_t retried_on_survivors = 0;
  for (std::size_t n = 1; n < report->node_stats.size(); ++n) {
    retried_on_survivors += report->node_stats[n].shards_retried;
  }
  EXPECT_EQ(retried_on_survivors, report->retried_shards);
  std::size_t sink_pairs = 0;
  for (const auto& [id, pairs] : delivered) sink_pairs += pairs.size();
  EXPECT_EQ(sink_pairs, faulty.size());
}

TEST(DistributedJoin, FailureOnAccelNodesIsAlsoExact) {
  const Dataset r = testutil::Uniform(300, 57);
  const Dataset s = testutil::Uniform(300, 58);
  JoinResult expected = BruteForceJoin(r, s);

  DistJoinOptions options;
  options.num_nodes = 3;
  options.use_accel = true;
  options.accel_join_units = 2;
  options.grid_cols = 4;
  options.grid_rows = 4;
  options.fault.fail_node = 1;
  options.fault.fail_after_shards = 1;
  JoinResult got;
  auto report = DistributedJoin(r, s, options, &got);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->failed_nodes, 1u);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(DistributedJoin, EveryNodeFailingIsAnError) {
  const Dataset r = testutil::Uniform(200, 59);
  const Dataset s = testutil::Uniform(200, 60);
  DistJoinOptions options;
  options.num_nodes = 1;
  options.fault.fail_node = 0;
  options.fault.fail_after_shards = 0;  // dies on its first shard
  JoinResult got;
  auto report = DistributedJoin(r, s, options, &got);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal)
      << report.status().ToString();
}

// Cancellation mid-exchange: the sink's delivered shards are a well-defined
// prefix -- whole shards only, each bit-identical to the same shard of an
// uncancelled run, no partial or duplicated shard delivery -- and the run
// reports Aborted.
TEST(DistributedJoin, CancellationMidExchangeDeliversWholeShardPrefix) {
  const Dataset r = testutil::Uniform(1000, 61, /*map=*/500.0,
                                      /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(1000, 62, /*map=*/500.0,
                                      /*max_edge=*/15.0);

  DistJoinOptions options;
  options.num_nodes = 4;
  options.grid_cols = 8;
  options.grid_rows = 8;

  ShardMap full;
  auto full_report =
      DistributedJoin(r, s, options, nullptr, nullptr, CollectInto(&full));
  ASSERT_TRUE(full_report.ok());
  ASSERT_GT(full.size(), 8u);

  exec::CancellationSource cancel;
  ShardMap delivered;
  std::size_t commits_seen = 0;
  const ShardSink cancelling_sink = [&](int shard_id,
                                        std::vector<ResultPair> pairs) {
    CollectInto(&delivered)(shard_id, std::move(pairs));
    if (++commits_seen == 3) cancel.Cancel();  // mid-exchange
  };
  auto report = DistributedJoin(r, s, options, nullptr, nullptr,
                                cancelling_sink, cancel.token());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kAborted)
      << report.status().ToString();

  EXPECT_GE(delivered.size(), 3u);
  EXPECT_LT(delivered.size(), full.size());
  for (auto& [shard_id, pairs] : delivered) {
    ASSERT_TRUE(full.count(shard_id)) << "shard " << shard_id;
    auto& reference = full[shard_id];
    std::sort(pairs.begin(), pairs.end());
    std::sort(reference.begin(), reference.end());
    EXPECT_EQ(pairs, reference)
        << "shard " << shard_id << " delivered partially or duplicated";
  }
}

TEST(DistributedJoin, EmptyInputsAndValidation) {
  const Dataset empty;
  const Dataset some = testutil::Uniform(50, 63);
  DistJoinOptions options;
  JoinResult got;
  auto report = DistributedJoin(empty, some, options, &got);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(got.size(), 0u);
  EXPECT_EQ(report->shards, 0u);

  options.num_nodes = 0;
  EXPECT_FALSE(DistributedJoin(some, some, options, &got).ok());
  options.num_nodes = 2;
  const Dataset bad("bad", {Box(5, 5, 3, 3)});  // inverted
  auto rejected = DistributedJoin(bad, some, options, &got);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// The dist-* engines through the registry and the streaming layer.
// ---------------------------------------------------------------------------

TEST(DistEngine, TypedHandleReportsClusterOutcome) {
  const Dataset r = testutil::Uniform(500, 64);
  const Dataset s = testutil::Uniform(500, 65);

  EngineConfig config;
  config.num_threads = 4;
  config.dist_nodes = 4;
  auto engine = MakeDistEngine(kDistPbsmEngine, config);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Plan(r, s).ok());
  EXPECT_GT((*engine)->plan().shards.size(), 0u);

  JoinResult out;
  ASSERT_TRUE((*engine)->Execute(&out, nullptr).ok());
  const DistReport& report = (*engine)->last_report();
  EXPECT_EQ(report.nodes, 4u);
  EXPECT_EQ(report.shards, (*engine)->plan().shards.size());
  EXPECT_EQ(report.num_results, out.size());
  EXPECT_GT(report.makespan_seconds, 0.0);
  EXPECT_GE(report.straggler_gap, 1.0);
  EXPECT_GT(report.exchange_messages, 0u);

  // Execute is repeatable over one Plan (fresh cluster per run).
  JoinResult again;
  ASSERT_TRUE((*engine)->Execute(&again, nullptr).ok());
  EXPECT_TRUE(JoinResult::SameMultiset(out, again));

  EXPECT_FALSE(MakeDistEngine("partitioned", config).ok());
}

TEST(DistEngine, StreamsNativelyThroughRunJoinAsync) {
  // Dense enough for several hundred result pairs -> a multi-chunk stream.
  const Dataset r = testutil::Uniform(700, 66, /*map=*/500.0,
                                      /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(700, 67, /*map=*/500.0,
                                      /*max_edge=*/15.0);

  EngineConfig config;
  config.num_threads = 4;
  auto sync = RunJoin(kDistPbsmEngine, r, s, config);
  ASSERT_TRUE(sync.ok());

  exec::StreamOptions stream;
  stream.chunk_pairs = 64;  // force multi-chunk delivery
  auto handle = exec::RunJoinAsync(kDistPbsmEngine, r, s, config, stream);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  exec::StreamSummary summary = handle->Collect();
  ASSERT_TRUE(summary.status.ok()) << summary.status.ToString();
  EXPECT_TRUE(
      JoinResult::SameMultiset(sync->result, summary.run.result));
  EXPECT_GT(summary.chunks, 1u);
  EXPECT_LE(summary.max_queue_depth, stream.queue_capacity);
}

TEST(DistEngine, CancellingTheStreamStopsTheCluster) {
  const Dataset r = testutil::Uniform(1500, 68, /*map=*/400.0,
                                      /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(1500, 69, /*map=*/400.0,
                                      /*max_edge=*/15.0);

  EngineConfig config;
  config.num_threads = 4;
  auto sync = RunJoin(kDistPbsmEngine, r, s, config);
  ASSERT_TRUE(sync.ok());

  exec::StreamOptions stream;
  stream.chunk_pairs = 32;
  stream.queue_capacity = 2;
  auto handle = exec::RunJoinAsync(kDistPbsmEngine, r, s, config, stream);
  ASSERT_TRUE(handle.ok());
  exec::ResultChunk chunk;
  std::vector<ResultPair> delivered;
  uint64_t expected_sequence = 0;
  for (int i = 0; i < 2 && handle->Next(&chunk); ++i) {
    EXPECT_EQ(chunk.sequence, expected_sequence++);
    delivered.insert(delivered.end(), chunk.pairs.begin(),
                     chunk.pairs.end());
  }
  handle->Cancel();
  while (handle->Next(&chunk)) {
    EXPECT_EQ(chunk.sequence, expected_sequence++);
    delivered.insert(delivered.end(), chunk.pairs.begin(),
                     chunk.pairs.end());
  }
  EXPECT_EQ(handle->Wait().code(), StatusCode::kAborted);

  // The delivered prefix is a genuine sub-multiset of the full join.
  JoinResult full = sync->result;
  full.Sort();
  std::sort(delivered.begin(), delivered.end());
  EXPECT_TRUE(std::includes(full.pairs().begin(), full.pairs().end(),
                            delivered.begin(), delivered.end()));
  EXPECT_LT(delivered.size(), full.size());
}

}  // namespace
}  // namespace swiftspatial::dist
