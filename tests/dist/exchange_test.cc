// Exchange contract tests: per-link FIFO order, bounded-queue backpressure
// with an exact high-water mark, terminal messages closing links, fair
// draining across links, cancellation unblocking both sides, and the wire
// cost model's accounting.
#include "dist/exchange.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace swiftspatial::dist {
namespace {

Message Chunk(int node, int shard, uint64_t attempt, std::size_t pairs) {
  Message msg;
  msg.kind = Message::Kind::kShardChunk;
  msg.node = node;
  msg.shard = shard;
  msg.attempt = attempt;
  msg.pairs.resize(pairs, ResultPair{1, 2});
  return msg;
}

Message Terminal(int node, bool failed) {
  Message msg;
  msg.kind = failed ? Message::Kind::kNodeFailed : Message::Kind::kNodeDone;
  msg.node = node;
  return msg;
}

TEST(Exchange, FifoPerLinkAndRecvEndsWhenAllLinksClose) {
  Exchange exchange(1, LinkConfig{});
  ASSERT_TRUE(exchange.Send(Chunk(0, 7, 0, 3)));
  ASSERT_TRUE(exchange.Send(Chunk(0, 7, 0, 2)));
  ASSERT_TRUE(exchange.Send(Terminal(0, /*failed=*/false)));

  Message msg;
  ASSERT_TRUE(exchange.Recv(&msg));
  EXPECT_EQ(msg.kind, Message::Kind::kShardChunk);
  EXPECT_EQ(msg.pairs.size(), 3u);
  ASSERT_TRUE(exchange.Recv(&msg));
  EXPECT_EQ(msg.pairs.size(), 2u);
  ASSERT_TRUE(exchange.Recv(&msg));
  EXPECT_EQ(msg.kind, Message::Kind::kNodeDone);
  // Closed and drained: end of stream, not a hang.
  EXPECT_FALSE(exchange.Recv(&msg));
}

TEST(Exchange, BackpressureBoundsTheQueueExactly) {
  LinkConfig config;
  config.queue_capacity = 2;
  Exchange exchange(1, config);

  std::thread producer([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(exchange.Send(Chunk(0, i, 0, 1)));
    }
    ASSERT_TRUE(exchange.Send(Terminal(0, false)));
  });

  std::size_t received = 0;
  Message msg;
  while (exchange.Recv(&msg)) {
    if (msg.kind == Message::Kind::kShardChunk) ++received;
  }
  producer.join();
  EXPECT_EQ(received, 20u);
  EXPECT_LE(exchange.link_stats(0).max_depth, 2u);
  EXPECT_GE(exchange.link_stats(0).max_depth, 1u);
}

TEST(Exchange, RecvDrainsEveryLinkWithoutStarvation) {
  Exchange exchange(3, LinkConfig{});
  for (int node = 0; node < 3; ++node) {
    ASSERT_TRUE(exchange.Send(Chunk(node, node, 0, 1)));
    ASSERT_TRUE(exchange.Send(Terminal(node, false)));
  }
  // The first three receives must come from three different links (fair
  // round-robin scan), not all from link 0.
  std::vector<bool> seen(3, false);
  Message msg;
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(exchange.Recv(&msg));
    if (msg.kind == Message::Kind::kShardChunk) {
      seen[static_cast<std::size_t>(msg.node)] = true;
    }
  }
  EXPECT_TRUE(seen[0] || seen[1] || seen[2]);
  std::size_t distinct = 0;
  for (const bool b : seen) distinct += b;
  EXPECT_GE(distinct, 2u) << "round-robin scan should interleave links";
  while (exchange.Recv(&msg)) {
  }
}

// Nobody drains the full link, so the second Send stays blocked until
// Cancel -- and must return false whether it observes the flag before or
// after entering its wait loop.
TEST(Exchange, CancelUnblocksABlockedSender) {
  LinkConfig config;
  config.queue_capacity = 1;
  Exchange exchange(1, config);
  ASSERT_TRUE(exchange.Send(Chunk(0, 0, 0, 1)));  // queue now full

  std::thread sender([&] {
    EXPECT_FALSE(exchange.Send(Chunk(0, 1, 0, 1)));  // blocks, then fails
  });
  exchange.Cancel();
  sender.join();
  EXPECT_TRUE(exchange.cancelled());
  EXPECT_FALSE(exchange.Send(Chunk(0, 2, 0, 1)));
}

// All links open but empty: Recv blocks until Cancel ends the stream.
TEST(Exchange, CancelUnblocksABlockedReceiver) {
  Exchange exchange(2, LinkConfig{});
  std::atomic<bool> recv_returned{false};
  std::thread receiver([&] {
    Message msg;
    EXPECT_FALSE(exchange.Recv(&msg));
    recv_returned = true;
  });
  exchange.Cancel();
  receiver.join();
  EXPECT_TRUE(recv_returned.load());
}

TEST(Exchange, WireModelChargesLatencyPlusBytesOverBandwidth) {
  LinkConfig config;
  config.bandwidth_bytes_per_sec = 1e6;
  config.latency_seconds = 1e-3;
  Exchange exchange(2, config);
  ASSERT_TRUE(exchange.Send(Chunk(0, 0, 0, 100)));  // 800 payload bytes
  ASSERT_TRUE(exchange.Send(Terminal(0, false)));
  ASSERT_TRUE(exchange.Send(Terminal(1, true)));

  const LinkStats stats = exchange.link_stats(0);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.payload_bytes, 100u * sizeof(ResultPair));
  // Two latencies plus (payload + 2 headers) / bandwidth.
  EXPECT_GT(stats.modelled_seconds, 2e-3);
  EXPECT_LT(stats.modelled_seconds, 2e-3 + 1e-3);
  EXPECT_EQ(exchange.total_messages(), 3u);
  EXPECT_EQ(exchange.total_payload_bytes(), 100u * sizeof(ResultPair));
  EXPECT_GE(exchange.max_link_seconds(), stats.modelled_seconds);

  Message msg;
  while (exchange.Recv(&msg)) {
  }
}

}  // namespace
}  // namespace swiftspatial::dist
