// Shared helpers for the test suite: small deterministic datasets and
// result-comparison utilities.
#ifndef SWIFTSPATIAL_TESTS_TEST_UTIL_H_
#define SWIFTSPATIAL_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "datagen/generator.h"

namespace swiftspatial::testutil {

/// Uniform rectangles on a small map; edge length up to `max_edge` so joins
/// have non-trivial selectivity at test scales.
inline Dataset Uniform(uint64_t n, uint64_t seed, double map = 1000.0,
                       double max_edge = 10.0) {
  UniformConfig cfg;
  cfg.map.map_size = map;
  cfg.count = n;
  cfg.min_edge = 0.5;
  cfg.max_edge = max_edge;
  cfg.seed = seed;
  return GenerateUniform(cfg);
}

/// Uniform points on a small map.
inline Dataset UniformPoints(uint64_t n, uint64_t seed, double map = 1000.0) {
  UniformConfig cfg;
  cfg.map.map_size = map;
  cfg.count = n;
  cfg.seed = seed;
  return GenerateUniformPoints(cfg);
}

/// Skewed OSM-like rectangles.
inline Dataset Skewed(uint64_t n, uint64_t seed, double map = 1000.0) {
  OsmLikeConfig cfg;
  cfg.map.map_size = map;
  cfg.count = n;
  cfg.num_clusters = 8;
  cfg.min_edge = 0.5;
  cfg.max_edge = 8.0;
  cfg.seed = seed;
  return GenerateOsmLike(cfg);
}

}  // namespace swiftspatial::testutil

#endif  // SWIFTSPATIAL_TESTS_TEST_UTIL_H_
