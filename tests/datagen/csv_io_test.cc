#include "datagen/csv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "tests/test_util.h"

namespace swiftspatial {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvIo, ReadsRectangles) {
  const std::string path = TempPath("rects.csv");
  WriteFile(path,
            "min_x,min_y,max_x,max_y\n"
            "0,0,1,1\n"
            "2.5,3.5,4.5,5.5\n");
  auto d = LoadCsvDataset(path);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ(d->size(), 2u);
  EXPECT_EQ(d->box(0), Box(0, 0, 1, 1));
  EXPECT_EQ(d->box(1), Box(2.5, 3.5, 4.5, 5.5));
  std::remove(path.c_str());
}

TEST(CsvIo, ReadsPointsAsDegenerateBoxes) {
  const std::string path = TempPath("points.csv");
  WriteFile(path, "10,20\n30,40\n");
  auto d = LoadCsvDataset(path);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->size(), 2u);
  EXPECT_TRUE(d->IsPointDataset());
  EXPECT_EQ(d->box(1), Box(30, 40, 30, 40));
  std::remove(path.c_str());
}

TEST(CsvIo, SkipsCommentsAndBlanks) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path,
            "# a comment\n"
            "\n"
            "0,0,1,1\n"
            "   # indented comment\n"
            "1,1,2,2\n");
  auto d = LoadCsvDataset(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvIo, RejectsMalformedRow) {
  const std::string path = TempPath("bad.csv");
  WriteFile(path, "0,0,1,1\nnot,a,number,row\n");
  auto d = LoadCsvDataset(path);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCorruption);
  EXPECT_NE(d.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvIo, RejectsInvertedRectangle) {
  const std::string path = TempPath("inverted.csv");
  WriteFile(path, "5,5,1,1\n");
  auto d = LoadCsvDataset(path);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvIo, RejectsWrongFieldCount) {
  const std::string path = TempPath("three.csv");
  WriteFile(path, "1,2,3\n");
  auto d = LoadCsvDataset(path);
  ASSERT_FALSE(d.ok());
  std::remove(path.c_str());
}

TEST(CsvIo, MissingFileIsIOError) {
  auto d = LoadCsvDataset(TempPath("no_such.csv"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kIOError);
}

TEST(CsvIo, SaveLoadRoundTrip) {
  const Dataset original = testutil::Uniform(500, 600);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsvDataset(original, path).ok());
  auto loaded = LoadCsvDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    // %.9g prints floats exactly.
    EXPECT_EQ(loaded->box(i), original.box(i)) << i;
  }
  std::remove(path.c_str());
}

// Regression: the buffered stdio write only reaches the file system at
// fclose, whose return value used to vanish inside the FileCloser
// destructor -- saving to a full disk reported Status::OK(). /dev/full
// fails the flush-at-close deterministically (writes buffer fine, the
// flush gets ENOSPC), which is exactly the swallowed path.
TEST(CsvIo, SaveReportsCloseTimeWriteFailure) {
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  const Dataset small = testutil::Uniform(4, 7);
  const Status s = SaveCsvDataset(small, "/dev/full");
  ASSERT_FALSE(s.ok()) << "flush-at-close failure was swallowed";
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("close failed"), std::string::npos)
      << s.ToString();
}

TEST(CsvIo, EmptyFileGivesEmptyDataset) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  auto d = LoadCsvDataset(path);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swiftspatial
