#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "grid/uniform_grid.h"

namespace swiftspatial {
namespace {

TEST(GenerateUniform, CountAndBounds) {
  UniformConfig cfg;
  cfg.count = 5000;
  cfg.seed = 1;
  const Dataset d = GenerateUniform(cfg);
  EXPECT_EQ(d.size(), 5000u);
  const Box extent = d.Extent();
  EXPECT_GE(extent.min_x, 0);
  EXPECT_GE(extent.min_y, 0);
  EXPECT_LE(extent.max_x, cfg.map.map_size);
  EXPECT_LE(extent.max_y, cfg.map.map_size);
}

TEST(GenerateUniform, UnitSquaresByDefault) {
  UniformConfig cfg;
  cfg.count = 1000;
  cfg.seed = 2;
  const Dataset d = GenerateUniform(cfg);
  for (const Box& b : d.boxes()) {
    EXPECT_LE(b.Width(), 1.001f);
    EXPECT_LE(b.Height(), 1.001f);
  }
}

TEST(GenerateUniform, DeterministicForSeed) {
  UniformConfig cfg;
  cfg.count = 500;
  cfg.seed = 33;
  const Dataset a = GenerateUniform(cfg);
  const Dataset b = GenerateUniform(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.box(i), b.box(i));
  cfg.seed = 34;
  const Dataset c = GenerateUniform(cfg);
  bool same = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.box(i) == c.box(i))) same = false;
  }
  EXPECT_FALSE(same);
}

TEST(GenerateUniformPoints, DegenerateBoxes) {
  UniformConfig cfg;
  cfg.count = 300;
  cfg.seed = 3;
  const Dataset d = GenerateUniformPoints(cfg);
  EXPECT_TRUE(d.IsPointDataset());
}

TEST(GenerateOsmLike, CountAndBounds) {
  OsmLikeConfig cfg;
  cfg.count = 5000;
  cfg.seed = 4;
  const Dataset d = GenerateOsmLike(cfg);
  EXPECT_EQ(d.size(), 5000u);
  const Box extent = d.Extent();
  EXPECT_GE(extent.min_x, 0);
  EXPECT_LE(extent.max_x, cfg.map.map_size);
}

// The OSM-like generator must actually be skewed: the densest grid tile
// should hold far more than a uniform share of the objects.
TEST(GenerateOsmLike, IsSpatiallySkewed) {
  const uint64_t n = 20000;
  OsmLikeConfig skew_cfg;
  skew_cfg.count = n;
  skew_cfg.seed = 5;
  const Dataset skewed = GenerateOsmLike(skew_cfg);
  UniformConfig uni_cfg;
  uni_cfg.count = n;
  uni_cfg.seed = 5;
  const Dataset uniform = GenerateUniform(uni_cfg);

  auto max_tile_load = [](const Dataset& d) {
    const UniformGrid grid(Box(0, 0, 10000, 10000), 32, 32);
    const auto assign = grid.Assign(d);
    std::size_t mx = 0;
    for (const auto& tile : assign) mx = std::max(mx, tile.size());
    return mx;
  };
  const std::size_t skew_max = max_tile_load(skewed);
  const std::size_t uni_max = max_tile_load(uniform);
  // Uniform: ~n/1024 per tile. Skewed: clusters concentrate mass.
  EXPECT_GT(skew_max, 4 * uni_max)
      << "skewed max " << skew_max << " vs uniform max " << uni_max;
}

TEST(GenerateOsmLikePoints, DegenerateAndSkewed) {
  OsmLikeConfig cfg;
  cfg.count = 2000;
  cfg.seed = 6;
  const Dataset d = GenerateOsmLikePoints(cfg);
  EXPECT_TRUE(d.IsPointDataset());
  EXPECT_EQ(d.size(), 2000u);
}

TEST(GenerateOsmLike, BackgroundFractionZeroAndOne) {
  OsmLikeConfig cfg;
  cfg.count = 1000;
  cfg.seed = 7;
  cfg.background_fraction = 1.0;  // degenerates to uniform
  const Dataset all_background = GenerateOsmLike(cfg);
  EXPECT_EQ(all_background.size(), 1000u);
  cfg.background_fraction = 0.0;  // all clustered
  const Dataset all_clustered = GenerateOsmLike(cfg);
  EXPECT_EQ(all_clustered.size(), 1000u);
}

TEST(Generators, NamesEncodeShapeAndCount) {
  UniformConfig cfg;
  cfg.count = 10;
  EXPECT_NE(GenerateUniform(cfg).name().find("uniform-10"), std::string::npos);
  OsmLikeConfig ocfg;
  ocfg.count = 10;
  EXPECT_NE(GenerateOsmLike(ocfg).name().find("osmlike-10"),
            std::string::npos);
}

}  // namespace
}  // namespace swiftspatial
