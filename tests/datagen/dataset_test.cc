#include "datagen/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tests/test_util.h"

namespace swiftspatial {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Dataset, BasicAccessors) {
  Dataset d("two", {Box(0, 0, 1, 1), Box(2, 2, 3, 3)});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.name(), "two");
  EXPECT_EQ(d.box(1), Box(2, 2, 3, 3));
  EXPECT_EQ(d.Extent(), Box(0, 0, 3, 3));
}

TEST(Dataset, PointDatasetDetection) {
  Dataset points("p", {Box(1, 1, 1, 1), Box(2, 3, 2, 3)});
  EXPECT_TRUE(points.IsPointDataset());
  Dataset mixed("m", {Box(1, 1, 1, 1), Box(2, 3, 4, 5)});
  EXPECT_FALSE(mixed.IsPointDataset());
}

TEST(Dataset, EmptyExtentIsEmpty) {
  Dataset d("empty", {});
  EXPECT_TRUE(d.Extent().IsEmpty());
}

TEST(Dataset, SaveLoadRoundTrip) {
  const Dataset original = testutil::Uniform(1000, 77);
  const std::string path = TempPath("roundtrip.swst");
  ASSERT_TRUE(original.SaveTo(path).ok());

  auto loaded = Dataset::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->box(i), original.box(i));
  }
  std::remove(path.c_str());
}

// Regression: binary SaveTo had the same swallowed flush-at-close as the
// CSV writer -- fclose's return value died in the FileCloser destructor,
// so a full disk reported Status::OK(). See CsvIo.SaveReportsCloseTime-
// WriteFailure for the /dev/full mechanics.
TEST(Dataset, SaveReportsCloseTimeWriteFailure) {
  std::FILE* probe = std::fopen("/dev/full", "wb");
  if (probe == nullptr) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  // IgnoreError-free cleanup: fclose of an unwritten handle cannot fail
  // meaningfully here, and it returns int, not Status.
  std::fclose(probe);
  const Dataset small = testutil::Uniform(4, 7);
  const Status s = small.SaveTo("/dev/full");
  ASSERT_FALSE(s.ok()) << "flush-at-close failure was swallowed";
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("close failed"), std::string::npos)
      << s.ToString();
}

TEST(Dataset, SaveLoadEmptyDataset) {
  const Dataset empty("none", {});
  const std::string path = TempPath("empty.swst");
  ASSERT_TRUE(empty.SaveTo(path).ok());
  auto loaded = Dataset::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileFails) {
  auto r = Dataset::LoadFrom(TempPath("does_not_exist.swst"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(Dataset, LoadRejectsBadMagic) {
  const std::string path = TempPath("garbage.swst");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "not a dataset file at all";
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);

  auto r = Dataset::LoadFrom(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsTruncatedFile) {
  // Write a valid file, then truncate the box payload.
  const Dataset original = testutil::Uniform(100, 5);
  const std::string path = TempPath("truncated.swst");
  ASSERT_TRUE(original.SaveTo(path).ok());
  // Rewrite with only half the bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(16 + 100 * sizeof(Box));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, got / 2, f);
  std::fclose(f);

  auto r = Dataset::LoadFrom(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swiftspatial
