#include "exec/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

#include "common/sync.h"

namespace swiftspatial::exec {
namespace {

TEST(TaskGraph, RunsIndependentTasks) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    graph.Add([&counter] { counter.fetch_add(1); });
  }
  graph.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(graph.tasks_run(), 100u);
  EXPECT_EQ(graph.tasks_skipped(), 0u);
}

TEST(TaskGraph, DependentTaskRunsAfterAllDeps) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> upstream_done{0};
  std::atomic<int> seen_at_merge{-1};
  std::vector<TaskId> deps;
  for (int i = 0; i < 16; ++i) {
    deps.push_back(graph.Add([&upstream_done] { upstream_done.fetch_add(1); }));
  }
  graph.Add([&] { seen_at_merge = upstream_done.load(); }, deps);
  graph.Wait();
  // The merge task must have observed every upstream task complete.
  EXPECT_EQ(seen_at_merge.load(), 16);
}

TEST(TaskGraph, DiamondDependencyOrdering) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::vector<int> order;
  Mutex mu;
  auto record = [&](int id) {
    MutexLock lock(&mu);
    order.push_back(id);
  };
  const TaskId a = graph.Add([&] { record(0); });
  const TaskId b = graph.Add([&] { record(1); }, {a});
  const TaskId c = graph.Add([&] { record(2); }, {a});
  graph.Add([&] { record(3); }, {b, c});
  graph.Wait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(TaskGraph, TasksCanAddTasksWhileRunning) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> counter{0};
  std::function<void(int)> spawn = [&](int depth) {
    counter.fetch_add(1);
    if (depth == 0) return;
    for (int i = 0; i < 2; ++i) {
      graph.Add([&spawn, depth] { spawn(depth - 1); });
    }
  };
  graph.Add([&spawn] { spawn(5); });
  graph.Wait();  // must cover the whole dynamically grown tree
  EXPECT_EQ(counter.load(), 63);  // 2^6 - 1
  EXPECT_EQ(graph.tasks_added(), 63u);
}

TEST(TaskGraph, DependingOnFinishedTaskRunsImmediately) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  const TaskId a = graph.Add([] {});
  graph.Wait();  // a has finished
  std::atomic<bool> ran{false};
  graph.Add([&ran] { ran = true; }, {a});
  graph.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(TaskGraph, CancellationSkipsUnstartedTasks) {
  ThreadPool pool(2);
  CancellationSource cancel;
  TaskGraph graph(&pool, cancel.token());
  std::atomic<int> ran{0};
  // A long chain: cancel fires from inside the second task; the rest of the
  // chain must be skipped, and Wait must still terminate.
  TaskId prev = graph.Add([&ran] { ran.fetch_add(1); });
  prev = graph.Add(
      [&ran, &cancel] {
        ran.fetch_add(1);
        cancel.Cancel();
      },
      {prev});
  for (int i = 0; i < 32; ++i) {
    prev = graph.Add([&ran] { ran.fetch_add(1); }, {prev});
  }
  graph.Wait();
  EXPECT_TRUE(graph.cancelled());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(graph.tasks_skipped(), 32u);
  EXPECT_EQ(graph.tasks_run(), 2u);
}

TEST(TaskGraph, PerTaskTimingIsRecorded) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  const TaskId spin = graph.Add([] {
    volatile double x = 1.0;
    for (int i = 0; i < 200000; ++i) x = x * 1.0000001;
  });
  graph.Wait();
  const TaskTiming t = graph.timing(spin);
  EXPECT_FALSE(t.skipped);
  EXPECT_GT(t.run_seconds, 0.0);
  EXPECT_GE(t.queued_seconds, 0.0);
  EXPECT_GE(graph.total_task_seconds(), t.run_seconds);
}

TEST(TaskGraph, TwoGraphsShareOnePool) {
  ThreadPool pool(4);
  TaskGraph g1(&pool);
  TaskGraph g2(&pool);
  std::atomic<int> c1{0}, c2{0};
  for (int i = 0; i < 50; ++i) {
    g1.Add([&c1] { c1.fetch_add(1); });
    g2.Add([&c2] { c2.fetch_add(1); });
  }
  // Waiting on g1 must not require g2's tasks to have drained (per-graph
  // accounting, unlike ThreadPool::Wait) -- and vice versa.
  g1.Wait();
  EXPECT_EQ(c1.load(), 50);
  g2.Wait();
  EXPECT_EQ(c2.load(), 50);
}

TEST(CancellationToken, DefaultTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationToken, SourcePropagatesToCopies) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;
  EXPECT_FALSE(a.cancelled());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(source.cancelled());
}

}  // namespace
}  // namespace swiftspatial::exec
