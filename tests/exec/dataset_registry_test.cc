// DatasetRegistry + plan-artifact cache: registration/versioning semantics,
// warm lookups returning the one shared PreparedPlan, version-bump
// invalidation (with in-flight plans pinning their data), byte-budget LRU
// eviction, and -- the tentpole correctness claim -- warm executions
// bit-identical to cold Plan+Execute across engine families, including
// under concurrent lookups (the TSan job runs this file).
#include "exec/dataset_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist_engine.h"
#include "join/engine.h"
#include "tests/test_util.h"

namespace swiftspatial::exec {
namespace {

Dataset Side(uint64_t seed) { return testutil::Uniform(300, seed); }

TEST(DatasetRegistry, PutGetRoundTripWithVersionBumpAndStats) {
  DatasetRegistry registry;
  const DatasetHandle h1 = registry.Put("roads", Side(1));
  EXPECT_EQ(h1.name, "roads");
  EXPECT_EQ(h1.version, 1u);

  auto resident = registry.Get("roads");
  ASSERT_TRUE(resident.ok());
  EXPECT_EQ(resident->version, 1u);
  EXPECT_EQ(resident->dataset->size(), 300u);
  EXPECT_EQ(resident->stats.count, 300u);
  EXPECT_GT(resident->stats.avg_width, 0.0);

  // Re-registration bumps the version; the handle pins the exact data.
  const DatasetHandle h2 = registry.Put("roads", Side(2));
  EXPECT_EQ(h2.version, 2u);
  auto updated = registry.Get("roads");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->version, 2u);

  EXPECT_EQ(registry.Names(), std::vector<std::string>{"roads"});
  auto missing = registry.Get("buildings");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DatasetRegistry, GetOrPrepareCachesAndSharesOnePlan) {
  DatasetRegistry registry;
  registry.Put("r", Side(11));
  registry.Put("s", Side(12));
  EngineConfig config;
  config.num_threads = 2;

  auto cold = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
  ASSERT_TRUE(warm.ok());
  // Warm lookups return the identical shared artifact, not a rebuild.
  EXPECT_EQ(cold->get(), warm->get());

  const PlanCacheStats stats = registry.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, (*cold)->MemoryBytes());

  auto unknown = registry.GetOrPrepare(kPartitionedEngine, "r", "nope");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

// The tentpole oracle: for every engine family -- native prepared plans
// (grid, R-tree, stripes, shards) and the generic planned-engine fallback
// -- executing the cached plan warm produces the identical result multiset
// as a cold Plan+Execute, and repeat warm executions stay identical
// (repeated-Execute idempotence through the prepared seam).
TEST(DatasetRegistry, WarmExecutionBitIdenticalToColdAcrossEngines) {
  const Dataset r = Side(21);
  const Dataset s = testutil::Skewed(300, 22);
  DatasetRegistry registry;
  registry.Put("r", r);
  registry.Put("s", s);
  EngineConfig config;
  config.num_threads = 2;
  config.num_partitions = 8;

  for (const char* engine :
       {kPartitionedEngine, kPbsmEngine, kSyncTraversalEngine,
        kParallelSyncTraversalEngine, kNestedLoopEngine, kDistPbsmEngine}) {
    auto cold = RunJoin(engine, r, s, config);
    ASSERT_TRUE(cold.ok()) << engine << ": " << cold.status().ToString();

    auto plan = registry.GetOrPrepare(engine, "r", "s", config);
    ASSERT_TRUE(plan.ok()) << engine << ": " << plan.status().ToString();
    for (int round = 0; round < 2; ++round) {
      auto warm = RunPreparedJoin(**plan, config);
      ASSERT_TRUE(warm.ok()) << engine << ": " << warm.status().ToString();
      EXPECT_TRUE(JoinResult::SameMultiset(cold->result, warm->result))
          << engine << " round " << round << ": cold " << cold->result.size()
          << " pairs, warm " << warm->result.size();
      // The warm path's entire point: plan_seconds covers only engine
      // instantiation, not planning.
      EXPECT_LT(warm->timing.plan_seconds, 0.05) << engine;
    }
  }
}

TEST(DatasetRegistry, VersionBumpInvalidatesButInFlightPlansStayUsable) {
  const Dataset old_s = Side(32);
  DatasetRegistry registry;
  registry.Put("r", Side(31));
  registry.Put("s", old_s);
  EngineConfig config;
  config.num_threads = 2;

  auto old_plan = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
  ASSERT_TRUE(old_plan.ok());
  auto old_cold = RunJoin(kPartitionedEngine, Side(31), old_s, config);
  ASSERT_TRUE(old_cold.ok());

  // Re-register "s": the cached plan is invalidated immediately...
  const Dataset new_s = Side(33);
  registry.Put("s", new_s);
  PlanCacheStats stats = registry.plan_cache_stats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);

  // ...so the next lookup is a miss that plans over the new version...
  auto new_plan = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
  ASSERT_TRUE(new_plan.ok());
  EXPECT_NE(old_plan->get(), new_plan->get());
  auto new_cold = RunJoin(kPartitionedEngine, Side(31), new_s, config);
  ASSERT_TRUE(new_cold.ok());
  auto new_warm = RunPreparedJoin(**new_plan, config);
  ASSERT_TRUE(new_warm.ok());
  EXPECT_TRUE(JoinResult::SameMultiset(new_cold->result, new_warm->result));

  // ...while the plan a request already holds keeps working and still
  // joins the data it was planned over (shared_ptr pinning).
  auto old_warm = RunPreparedJoin(**old_plan, config);
  ASSERT_TRUE(old_warm.ok());
  EXPECT_TRUE(JoinResult::SameMultiset(old_cold->result, old_warm->result));
}

TEST(DatasetRegistry, ConfigAndEngineKeySeparateCacheEntries) {
  DatasetRegistry registry;
  registry.Put("r", Side(41));
  registry.Put("s", Side(42));
  EngineConfig a;
  a.num_threads = 2;
  EngineConfig b = a;
  b.grid_cols = 7;
  b.grid_rows = 7;

  ASSERT_TRUE(registry.GetOrPrepare(kPartitionedEngine, "r", "s", a).ok());
  ASSERT_TRUE(registry.GetOrPrepare(kPartitionedEngine, "r", "s", b).ok());
  ASSERT_TRUE(registry.GetOrPrepare(kPbsmEngine, "r", "s", a).ok());
  const PlanCacheStats stats = registry.plan_cache_stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(DatasetRegistry, ByteBudgetEvictsLeastRecentlyUsed) {
  DatasetRegistryOptions options;
  options.max_plan_bytes = 1;  // pathologically small: keep-newest only
  DatasetRegistry registry(options);
  registry.Put("r", Side(51));
  registry.Put("s", Side(52));
  EngineConfig a;
  a.num_threads = 1;
  EngineConfig b = a;
  b.grid_cols = 5;
  b.grid_rows = 5;

  auto first = registry.GetOrPrepare(kPartitionedEngine, "r", "s", a);
  ASSERT_TRUE(first.ok());
  auto second = registry.GetOrPrepare(kPartitionedEngine, "r", "s", b);
  ASSERT_TRUE(second.ok());
  const PlanCacheStats stats = registry.plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);  // never below one entry
  EXPECT_EQ(stats.evictions, 1u);

  // The evicted artifact a caller still holds remains fully usable.
  auto run = RunPreparedJoin(**first, a);
  ASSERT_TRUE(run.ok());

  // Re-requesting the evicted key is a fresh miss, not a corrupt hit.
  auto again = registry.GetOrPrepare(kPartitionedEngine, "r", "s", a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(registry.plan_cache_stats().misses, 3u);
}

// Race coverage for the TSan job: concurrent warm lookups and executions of
// one cached plan, overlapping a cold miss, must be data-race-free and all
// produce the identical multiset.
TEST(DatasetRegistry, ConcurrentWarmLookupsAndExecutionsAreRaceFree) {
  const Dataset r = Side(61);
  const Dataset s = Side(62);
  DatasetRegistry registry;
  registry.Put("r", r);
  registry.Put("s", s);
  EngineConfig config;
  config.num_threads = 2;
  auto cold = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(cold.ok());

  constexpr int kThreads = 8;
  std::vector<JoinRun> runs(kThreads);
  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto plan = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
      if (!plan.ok()) {
        statuses[i] = plan.status();
        return;
      }
      auto run = RunPreparedJoin(**plan, config);
      if (!run.ok()) {
        statuses[i] = run.status();
        return;
      }
      runs[i] = std::move(*run);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
    EXPECT_TRUE(JoinResult::SameMultiset(cold->result, runs[i].result)) << i;
  }
  // However the misses raced, exactly one plan won the insert.
  EXPECT_EQ(registry.plan_cache_stats().entries, 1u);
}

// TSan stress: GetOrPrepare racing byte-budget LRU eviction AND version
// bumps, all at maximum churn (a budget that evicts on every insert, and a
// writer re-registering "s" mid-flight). Invariants under fire: every
// returned plan stays fully usable regardless of being invalidated or
// evicted while held (shared_ptr pinning), every execution produces the
// exact cold multiset (the bumper re-Puts identical data, so results must
// never change), and once the race quiesces exactly one insert owns each
// key -- a repeat lookup shares the winner pointer instead of replanning.
TEST(DatasetRegistry, StressGetOrPrepareRacingEvictionAndVersionBump) {
  const Dataset r = Side(81);
  const Dataset s = Side(82);
  EngineConfig config;
  config.num_threads = 1;
  auto cold = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(cold.ok());

  DatasetRegistryOptions options;
  options.max_plan_bytes = 1;  // keep-newest only: every insert evicts
  DatasetRegistry registry(options);
  registry.Put("r", r);
  registry.Put("s", s);

  constexpr int kThreads = 6;
  constexpr int kIterations = 8;
  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Private copy of the oracle: SameMultiset sorts both sides in place,
      // so sharing one reference across threads would race in the test.
      JoinResult oracle = cold->result;
      // Two alternating configs per thread: distinct cache keys contending
      // for a one-entry budget, so lookups constantly evict each other.
      EngineConfig mine = config;
      for (int iter = 0; iter < kIterations; ++iter) {
        mine.grid_cols = (iter % 2 == 0) ? 0 : 4 + i;
        mine.grid_rows = mine.grid_cols;
        auto plan = registry.GetOrPrepare(kPartitionedEngine, "r", "s", mine);
        if (!plan.ok()) {
          statuses[i] = plan.status();
          return;
        }
        // Execute while eviction/invalidation may have already dropped the
        // cache entry: the held plan must keep working and keep joining the
        // data it was planned over.
        auto run = RunPreparedJoin(**plan, mine);
        if (!run.ok()) {
          statuses[i] = run.status();
          return;
        }
        if (!JoinResult::SameMultiset(oracle, run->result)) {
          statuses[i] = Status::Internal("stress run diverged from cold");
          return;
        }
      }
    });
  }
  // The version bumper: re-registers "s" with identical data while lookups
  // and executions are in flight. Every bump invalidates all cached plans
  // mentioning "s", so misses, insert races, eviction, and invalidation all
  // overlap.
  std::thread bumper([&] {
    for (int b = 0; b < 5; ++b) registry.Put("s", s);
  });
  for (auto& t : threads) t.join();
  bumper.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
  }

  // Quiescent: one miss re-plans at the final version, then a repeat lookup
  // must share that exact winner (one insert per key, no silent replans).
  auto final_plan = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
  ASSERT_TRUE(final_plan.ok());
  auto repeat = registry.GetOrPrepare(kPartitionedEngine, "r", "s", config);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(final_plan->get(), repeat->get());
  EXPECT_EQ(registry.plan_cache_stats().entries, 1u);
}

TEST(DatasetRegistry, EmptyDatasetsPrepareAndExecuteSafely) {
  DatasetRegistry registry;
  registry.Put("empty", Dataset());
  registry.Put("s", Side(71));

  for (const char* engine :
       {kPartitionedEngine, kPbsmEngine, kSyncTraversalEngine,
        kNestedLoopEngine}) {
    auto plan = registry.GetOrPrepare(engine, "empty", "s");
    ASSERT_TRUE(plan.ok()) << engine << ": " << plan.status().ToString();
    auto run = RunPreparedJoin(**plan);
    ASSERT_TRUE(run.ok()) << engine << ": " << run.status().ToString();
    EXPECT_EQ(run->result.size(), 0u) << engine;
  }
}

}  // namespace
}  // namespace swiftspatial::exec
