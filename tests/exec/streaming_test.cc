// Streaming-API contract tests: chunked delivery, backpressure bounds,
// cancellation prefixes, and -- the load-bearing one -- Collect() proven
// bit-identical to the synchronous RunJoin result for EVERY engine in the
// registry (the "async" engine is additionally covered by the cross-
// algorithm oracle in tests/join/equivalence_test.cc).
#include "exec/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "join/engine.h"
#include "tests/test_util.h"

namespace swiftspatial::exec {
namespace {

// Sorted copy of a result's pairs for multiset comparisons.
std::vector<ResultPair> SortedPairs(const JoinResult& result) {
  std::vector<ResultPair> pairs = result.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// --- Fault-injecting engines -------------------------------------------
// A producer that fails mid-run must surface a non-OK status to the
// consumer instead of hanging or silently truncating. Two failure flavours:
// an Execute that errors after partial work, and an Execute that throws.
// Registered lazily under a "fault-" prefix; the registry-enumerating
// tests below skip that prefix (sync RunJoin on them fails by design).

class FaultEngineBase : public JoinEngine {
 public:
  explicit FaultEngineBase(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  Status Plan(const Dataset&, const Dataset&) override {
    return Status::OK();
  }

 private:
  std::string name_;
};

class ErrorAfterPartialResultEngine : public FaultEngineBase {
 public:
  using FaultEngineBase::FaultEngineBase;
  Status Execute(JoinResult* out, JoinStats*) override {
    out->Add(0, 0);  // partial work the stream must NOT deliver as success
    return Status::Internal("injected mid-run failure");
  }
};

class ThrowingEngine : public FaultEngineBase {
 public:
  using FaultEngineBase::FaultEngineBase;
  Status Execute(JoinResult*, JoinStats*) override {
    throw std::runtime_error("injected producer exception");
  }
};

constexpr const char* kFaultErrorEngine = "fault-error";
constexpr const char* kFaultThrowEngine = "fault-throw";

void RegisterFaultEnginesOnce() {
  static const bool registered = [] {
    // A registration failure here would silently skip the fault-path
    // coverage below, so it aborts the test binary.
    const Status error_st = EngineRegistry::Global().Register(
        kFaultErrorEngine, [](const EngineConfig&) {
          return std::make_unique<ErrorAfterPartialResultEngine>(
              kFaultErrorEngine);
        });
    SWIFT_CHECK(error_st.ok()) << error_st.ToString();
    const Status throw_st = EngineRegistry::Global().Register(
        kFaultThrowEngine, [](const EngineConfig&) {
          return std::make_unique<ThrowingEngine>(kFaultThrowEngine);
        });
    SWIFT_CHECK(throw_st.ok()) << throw_st.ToString();
    return true;
  }();
  (void)registered;
}

bool IsFaultEngine(const std::string& name) {
  return name.rfind("fault-", 0) == 0;
}

TEST(Streaming, CollectMatchesSynchronousRunForEveryRegisteredEngine) {
  const Dataset rects_r = testutil::Uniform(400, 91);
  const Dataset rects_s = testutil::Skewed(400, 92);
  const Dataset points_r = testutil::UniformPoints(400, 93);

  for (const std::string& name : EngineRegistry::Global().Names()) {
    if (IsFaultEngine(name)) continue;  // fail by design (see above)
    const bool point_only = name == kCuSpatialLikeEngine;
    const Dataset& r = point_only ? points_r : rects_r;

    EngineConfig config;
    config.num_threads = 4;
    config.num_partitions = 16;
    auto sync = RunJoin(name, r, rects_s, config);
    ASSERT_TRUE(sync.ok()) << name << ": " << sync.status().ToString();

    StreamOptions stream;
    stream.chunk_pairs = 128;  // force multi-chunk streams
    auto handle = RunJoinAsync(name, r, rects_s, config, stream);
    ASSERT_TRUE(handle.ok()) << name << ": " << handle.status().ToString();
    StreamSummary summary = handle->Collect();
    ASSERT_TRUE(summary.status.ok())
        << name << ": " << summary.status.ToString();

    EXPECT_TRUE(
        JoinResult::SameMultiset(sync->result, summary.run.result))
        << name << ": sync " << sync->result.size() << " pairs, streamed "
        << summary.run.result.size();
    EXPECT_LE(summary.max_queue_depth, stream.queue_capacity) << name;
  }
}

TEST(Streaming, ChunksHaveConsecutiveSequencesAndBoundedSize) {
  const Dataset r = testutil::Uniform(600, 11);
  const Dataset s = testutil::Uniform(600, 12);
  EngineConfig config;
  config.num_threads = 4;
  StreamOptions stream;
  stream.chunk_pairs = 100;

  auto handle = RunJoinAsync(kPartitionedEngine, r, s, config, stream);
  ASSERT_TRUE(handle.ok());
  ResultChunk chunk;
  uint64_t expected_sequence = 0;
  std::size_t total_pairs = 0;
  while (handle->Next(&chunk)) {
    EXPECT_EQ(chunk.sequence, expected_sequence++);
    EXPECT_FALSE(chunk.pairs.empty());
    EXPECT_LE(chunk.pairs.size(), stream.chunk_pairs);
    total_pairs += chunk.pairs.size();
  }
  EXPECT_TRUE(handle->Wait().ok());

  auto sync = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(total_pairs, sync->result.size());
}

TEST(Streaming, BackpressureBoundsQueueAgainstSlowConsumer) {
  // Dense map: thousands of result pairs, so the stream is many chunks.
  const Dataset r = testutil::Uniform(800, 21, /*map=*/300.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(800, 22, /*map=*/300.0, /*max_edge=*/20.0);
  EngineConfig config;
  config.num_threads = 4;
  StreamOptions stream;
  stream.chunk_pairs = 32;    // many small chunks
  stream.queue_capacity = 2;  // tiny buffer

  auto handle = RunJoinAsync(kPartitionedEngine, r, s, config, stream);
  ASSERT_TRUE(handle.ok());
  ResultChunk chunk;
  int consumed = 0;
  while (handle->Next(&chunk)) {
    if (++consumed % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(handle->Wait().ok());
  // The producer must never have buffered more than the configured cap, no
  // matter how slowly we drained.
  EXPECT_LE(handle->max_queue_depth(), stream.queue_capacity);
  EXPECT_GT(consumed, 4);  // the workload really was multi-chunk
}

TEST(Streaming, MidStreamCancellationDeliversWellDefinedPrefix) {
  // Dense map: thousands of result pairs, so cancellation lands mid-run.
  const Dataset r = testutil::Uniform(1200, 31, /*map=*/300.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(1200, 32, /*map=*/300.0, /*max_edge=*/20.0);
  EngineConfig config;
  config.num_threads = 4;
  auto sync = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(sync.ok());
  std::vector<ResultPair> full = SortedPairs(sync->result);
  ASSERT_GT(full.size(), 500u);  // enough pairs that cancellation lands mid-run

  StreamOptions stream;
  stream.chunk_pairs = 64;
  stream.queue_capacity = 2;
  auto handle = RunJoinAsync(kPartitionedEngine, r, s, config, stream);
  ASSERT_TRUE(handle.ok());

  // Take one chunk, then cancel. With >> capacity chunks outstanding the
  // producer cannot have finished, so the stream must end Aborted.
  ResultChunk chunk;
  ASSERT_TRUE(handle->Next(&chunk));
  EXPECT_EQ(chunk.sequence, 0u);
  handle->Cancel();
  StreamSummary summary = handle->Collect();
  EXPECT_EQ(summary.status.code(), StatusCode::kAborted)
      << summary.status.ToString();

  // The prefix is well-defined: what we saw plus what Collect drained is a
  // strict sub-multiset of the full result -- genuine pairs, no duplicates.
  std::vector<ResultPair> delivered = chunk.pairs;
  delivered.insert(delivered.end(), summary.run.result.pairs().begin(),
                   summary.run.result.pairs().end());
  std::sort(delivered.begin(), delivered.end());
  EXPECT_TRUE(
      std::includes(full.begin(), full.end(), delivered.begin(),
                    delivered.end()))
      << "cancelled stream delivered pairs outside the true result";
  EXPECT_LT(delivered.size(), full.size());
}

TEST(Streaming, DroppingHandleMidStreamLeaksNothing) {
  const Dataset r = testutil::Uniform(1000, 41);
  const Dataset s = testutil::Uniform(1000, 42);
  EngineConfig config;
  config.num_threads = 4;
  StreamOptions stream;
  stream.chunk_pairs = 32;
  stream.queue_capacity = 2;
  {
    auto handle = RunJoinAsync(kPartitionedEngine, r, s, config, stream);
    ASSERT_TRUE(handle.ok());
    ResultChunk chunk;
    ASSERT_TRUE(handle->Next(&chunk));
    // Handle goes out of scope with the producer still running: the
    // destructor must cancel, drain, and join (ASan/TSan verify no leaks).
  }
  SUCCEED();
}

TEST(Streaming, EmptyInputsCloseImmediately) {
  const Dataset empty;
  const Dataset one("one", {Box(0, 0, 1, 1)});
  auto handle = RunJoinAsync(kPartitionedEngine, empty, one);
  ASSERT_TRUE(handle.ok());
  ResultChunk chunk;
  EXPECT_FALSE(handle->Next(&chunk));
  EXPECT_TRUE(handle->Wait().ok());
}

TEST(Streaming, UnknownEngineFailsFast) {
  const Dataset d = testutil::Uniform(10, 5);
  auto handle = RunJoinAsync("no_such_engine", d, d);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kNotFound);
}

TEST(Streaming, InvalidGridConfigFailsFast) {
  const Dataset d = testutil::Uniform(10, 5);
  EngineConfig config;
  config.grid_cols = 4;  // cols set but rows auto: rejected
  auto handle = RunJoinAsync(kPartitionedEngine, d, d, config);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(Streaming, MalformedGeometrySurfacesThroughWait) {
  const Dataset bad("bad", {Box(10, 10, 5, 5)});  // inverted
  const Dataset good("good", {Box(0, 0, 1, 1)});
  auto handle = RunJoinAsync(kPartitionedEngine, bad, good);
  ASSERT_TRUE(handle.ok());  // data-dependent: not a fail-fast error
  EXPECT_EQ(handle->Wait().code(), StatusCode::kInvalidArgument);
}

TEST(Streaming, ExplicitShardCountStreamsIdenticalResult) {
  const Dataset r = testutil::Uniform(500, 51);
  const Dataset s = testutil::Skewed(500, 52);
  EngineConfig config;
  config.num_threads = 2;
  auto sync = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(sync.ok());
  for (const int shards : {1, 2, 7, 64}) {
    StreamOptions stream;
    stream.num_shards = shards;
    auto handle = RunJoinAsync(kAsyncEngine, r, s, config, stream);
    ASSERT_TRUE(handle.ok());
    StreamSummary summary = handle->Collect();
    ASSERT_TRUE(summary.status.ok()) << summary.status.ToString();
    EXPECT_TRUE(JoinResult::SameMultiset(sync->result, summary.run.result))
        << "shards=" << shards;
  }
}

TEST(Streaming, DeferredStreamRunsOnCallerThreadAndSharedPool) {
  const Dataset r = testutil::Uniform(300, 61);
  const Dataset s = testutil::Uniform(300, 62);
  ThreadPool pool(4);
  EngineConfig config;
  config.num_threads = 4;
  auto deferred = MakeJoinStream(kPartitionedEngine, r, s, config, {}, &pool);
  ASSERT_TRUE(deferred.ok());
  std::thread runner(std::move(deferred->producer));
  StreamSummary summary = deferred->handle.Collect();
  runner.join();
  ASSERT_TRUE(summary.status.ok());
  auto sync = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(sync.ok());
  EXPECT_TRUE(JoinResult::SameMultiset(sync->result, summary.run.result));
}

TEST(Streaming, MoveAssignOverActiveStreamTearsDownCleanly) {
  const Dataset r = testutil::Uniform(900, 81, /*map=*/300.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(900, 82, /*map=*/300.0, /*max_edge=*/20.0);
  EngineConfig config;
  config.num_threads = 2;
  StreamOptions stream;
  stream.chunk_pairs = 32;
  stream.queue_capacity = 2;
  auto first = RunJoinAsync(kPartitionedEngine, r, s, config, stream);
  ASSERT_TRUE(first.ok());
  ResultChunk chunk;
  ASSERT_TRUE(first->Next(&chunk));  // the first stream is live mid-run
  // Move-assigning a new stream over the live handle must cancel, drain,
  // and join the old producer -- not std::terminate on the thread member.
  auto second = RunJoinAsync(kPartitionedEngine, r, s, config, stream);
  ASSERT_TRUE(second.ok());
  *first = std::move(*second);
  StreamSummary summary = first->Collect();
  EXPECT_TRUE(summary.status.ok()) << summary.status.ToString();
}

TEST(Streaming, DroppedDeferredProducerClosesStreamViaGuard) {
  const Dataset d = testutil::Uniform(50, 83);
  auto deferred = MakeJoinStream(kPartitionedEngine, d, d);
  ASSERT_TRUE(deferred.ok());
  AsyncJoinHandle handle = std::move(deferred->handle);
  // Simulate a caller error path that drops the stream without ever
  // running or abandoning it: destroying both closures must close the
  // stream (via the abandon guard) instead of hanging every waiter.
  deferred->producer = nullptr;
  deferred->abandon = nullptr;
  EXPECT_EQ(handle.Wait().code(), StatusCode::kAborted);
}

TEST(Streaming, MidRunEngineFailureSurfacesToConsumer) {
  RegisterFaultEnginesOnce();
  const Dataset d = testutil::Uniform(50, 73);
  auto handle = RunJoinAsync(kFaultErrorEngine, d, d);
  ASSERT_TRUE(handle.ok());
  // The stream must terminate (no hang) and report the injected failure --
  // and the partial pair the engine produced before failing must not be
  // delivered as if the run had succeeded.
  ResultChunk chunk;
  std::size_t delivered = 0;
  while (handle->Next(&chunk)) delivered += chunk.pairs.size();
  EXPECT_EQ(delivered, 0u);
  const Status st = handle->Wait();
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
}

TEST(Streaming, ThrowingProducerClosesStreamWithError) {
  RegisterFaultEnginesOnce();
  const Dataset d = testutil::Uniform(50, 74);
  auto handle = RunJoinAsync(kFaultThrowEngine, d, d);
  ASSERT_TRUE(handle.ok());
  // Before fault containment this tore the process down via an uncaught
  // exception on the producer thread; now the consumer sees Internal.
  StreamSummary summary = handle->Collect();
  EXPECT_EQ(summary.status.code(), StatusCode::kInternal)
      << summary.status.ToString();
  EXPECT_TRUE(summary.run.result.empty());
}

TEST(Streaming, ThrowingProducerThroughServicePath) {
  RegisterFaultEnginesOnce();
  const Dataset d = testutil::Uniform(50, 75);
  auto deferred = MakeJoinStream(kFaultThrowEngine, d, d);
  ASSERT_TRUE(deferred.ok());
  std::thread runner(std::move(deferred->producer));
  EXPECT_EQ(deferred->handle.Wait().code(), StatusCode::kInternal);
  runner.join();
}

TEST(Streaming, AccelEnginesStreamNativelyInBoundedChunks) {
  // Dense enough that the device flushes many result bursts: the stream
  // must be multi-chunk with consecutive sequences and bounded chunk sizes,
  // and Collect must equal the synchronous run (the registry-wide test
  // above already pins Collect == sync; this pins the chunk shape).
  const Dataset r = testutil::Uniform(500, 76, /*map=*/200.0,
                                      /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(500, 77, /*map=*/200.0,
                                      /*max_edge=*/15.0);
  for (const char* name :
       {kAccelBfsEngine, kAccelPbsmEngine, kAccelPbsmMultiEngine}) {
    EngineConfig config;
    config.accel_join_units = 4;
    auto sync = RunJoin(name, r, s, config);
    ASSERT_TRUE(sync.ok()) << name;
    ASSERT_GT(sync->result.size(), 1000u) << name;

    StreamOptions stream;
    stream.chunk_pairs = 256;
    auto handle = RunJoinAsync(name, r, s, config, stream);
    ASSERT_TRUE(handle.ok()) << name;
    ResultChunk chunk;
    uint64_t expected_sequence = 0;
    JoinResult streamed;
    while (handle->Next(&chunk)) {
      EXPECT_EQ(chunk.sequence, expected_sequence++) << name;
      EXPECT_FALSE(chunk.pairs.empty()) << name;
      EXPECT_LE(chunk.pairs.size(), stream.chunk_pairs) << name;
      auto& pairs = streamed.mutable_pairs();
      pairs.insert(pairs.end(), chunk.pairs.begin(), chunk.pairs.end());
    }
    EXPECT_TRUE(handle->Wait().ok()) << name;
    EXPECT_GT(expected_sequence, 4u)
        << name << ": expected a genuinely multi-chunk native stream";
    EXPECT_TRUE(JoinResult::SameMultiset(sync->result, streamed)) << name;
  }
}

TEST(Streaming, AccelCancellationDeliversPrefixAndAborts) {
  const Dataset r = testutil::Uniform(600, 78, /*map=*/300.0,
                                      /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(600, 79, /*map=*/300.0,
                                      /*max_edge=*/20.0);
  EngineConfig config;
  config.accel_join_units = 4;
  auto sync = RunJoin(kAccelPbsmEngine, r, s, config);
  ASSERT_TRUE(sync.ok());
  std::vector<ResultPair> full = SortedPairs(sync->result);
  ASSERT_GT(full.size(), 1000u);

  StreamOptions stream;
  stream.chunk_pairs = 64;
  stream.queue_capacity = 2;
  auto handle = RunJoinAsync(kAccelPbsmEngine, r, s, config, stream);
  ASSERT_TRUE(handle.ok());
  ResultChunk chunk;
  ASSERT_TRUE(handle->Next(&chunk));
  handle->Cancel();
  StreamSummary summary = handle->Collect();
  EXPECT_EQ(summary.status.code(), StatusCode::kAborted)
      << summary.status.ToString();
  std::vector<ResultPair> delivered = chunk.pairs;
  delivered.insert(delivered.end(), summary.run.result.pairs().begin(),
                   summary.run.result.pairs().end());
  std::sort(delivered.begin(), delivered.end());
  EXPECT_TRUE(std::includes(full.begin(), full.end(), delivered.begin(),
                            delivered.end()))
      << "cancelled accel stream delivered pairs outside the true result";
  EXPECT_LT(delivered.size(), full.size());
}

TEST(Streaming, AccelMalformedGeometrySurfacesThroughWait) {
  const Dataset bad("bad", {Box(10, 10, 5, 5)});  // inverted
  const Dataset good("good", {Box(0, 0, 1, 1)});
  auto handle = RunJoinAsync(kAccelPbsmEngine, bad, good);
  ASSERT_TRUE(handle.ok());  // data-dependent: not a fail-fast error
  EXPECT_EQ(handle->Wait().code(), StatusCode::kInvalidArgument);
}

TEST(Streaming, AccelInvalidConfigFailsFast) {
  const Dataset d = testutil::Uniform(10, 80);
  EngineConfig config;
  config.accel_tile_cap = 0;
  auto handle = RunJoinAsync(kAccelPbsmEngine, d, d, config);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(Streaming, AbandonedDeferredStreamReportsStatus) {
  const Dataset d = testutil::Uniform(50, 71);
  auto deferred = MakeJoinStream(kPartitionedEngine, d, d);
  ASSERT_TRUE(deferred.ok());
  deferred->abandon(Status::Aborted("service shutting down"));
  ResultChunk chunk;
  EXPECT_FALSE(deferred->handle.Next(&chunk));
  EXPECT_EQ(deferred->handle.Wait().code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace swiftspatial::exec
