// JoinService behaviour under load: admission control bounds the queue,
// scheduling policies order tenants as documented, cancellation is clean
// while queued and mid-stream, and shutdown abandons queued requests with a
// well-defined Aborted status. Several tests deliberately wedge the single
// dispatcher with a "blocker" request whose stream nobody consumes (its
// producer stalls on backpressure), which makes queue states deterministic.
#include "exec/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "join/engine.h"
#include "tests/test_util.h"

namespace swiftspatial::exec {
namespace {

// Dense inputs -> thousands of pairs -> many chunks, so an unconsumed
// stream reliably stalls its producer on the bounded queue.
Dataset DenseSide(uint64_t seed) {
  return testutil::Uniform(900, seed, /*map=*/300.0, /*max_edge=*/20.0);
}

// Sparse inputs -> few pairs -> at most one chunk, so these requests finish
// without anyone consuming their streams.
Dataset SmallSide(uint64_t seed) { return testutil::Uniform(120, seed); }

JoinServiceOptions BlockableOptions() {
  JoinServiceOptions options;
  options.worker_threads = 2;
  options.max_concurrent = 1;
  options.max_pending = 4;
  options.stream.chunk_pairs = 32;
  options.stream.queue_capacity = 2;
  return options;
}

TEST(JoinService, ServesConcurrentTenantsCorrectResults) {
  const Dataset r = testutil::Uniform(400, 1);
  const Dataset s = testutil::Skewed(400, 2);
  EngineConfig config;
  config.num_threads = 2;
  auto sync = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(sync.ok());

  JoinServiceOptions options;
  options.worker_threads = 4;
  options.max_concurrent = 2;
  options.max_pending = 16;
  JoinService service(options);

  constexpr int kRequests = 8;
  std::vector<std::optional<AsyncJoinHandle>> handles;
  for (int i = 0; i < kRequests; ++i) {
    auto handle = service.Submit("tenant-" + std::to_string(i % 3),
                                 kPartitionedEngine, r, s, config);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.emplace_back(std::move(*handle));
  }
  // Concurrent consumers, one per stream (requests may run in any order).
  std::vector<std::thread> consumers;
  std::vector<StreamSummary> summaries(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    consumers.emplace_back(
        [&, i] { summaries[i] = handles[i]->Collect(); });
  }
  for (auto& c : consumers) c.join();
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(summaries[i].status.ok()) << summaries[i].status.ToString();
    EXPECT_TRUE(
        JoinResult::SameMultiset(sync->result, summaries[i].run.result))
        << "request " << i;
  }
  service.Drain();  // Collect returns at stream close; accounting follows
  EXPECT_EQ(service.stats().completed, static_cast<std::size_t>(kRequests));
}

TEST(JoinService, OverloadRejectsBeyondBoundedQueue) {
  const Dataset dense_r = DenseSide(11);
  const Dataset dense_s = DenseSide(12);
  const Dataset small_r = SmallSide(13);
  const Dataset small_s = SmallSide(14);

  JoinService service(BlockableOptions());  // max_pending = 4
  // Wedge the only dispatcher: nobody consumes the dense stream yet.
  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  // One chunk arriving proves the dispatcher picked the blocker up (it no
  // longer occupies a pending-queue slot) and is now wedged mid-stream.
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));

  // Fill the pending queue, then two more must bounce.
  std::vector<std::optional<AsyncJoinHandle>> queued;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto handle = service.Submit("tenant", kPartitionedEngine, small_r,
                                 small_s);
    if (handle.ok()) {
      queued.emplace_back(std::move(*handle));
    } else {
      EXPECT_EQ(handle.status().code(), StatusCode::kAborted)
          << handle.status().ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(queued.size(), 4u);
  EXPECT_EQ(rejected, 2);

  const JoinServiceStats mid = service.stats();
  EXPECT_EQ(mid.admitted, 5u);  // blocker + 4 queued
  EXPECT_EQ(mid.rejected, 2u);
  EXPECT_LE(mid.max_pending_seen, 4u);  // bounded growth, pinned

  // Unblock and drain everything.
  StreamSummary blocked = blocker->Collect();
  EXPECT_TRUE(blocked.status.ok());
  for (auto& handle : queued) {
    EXPECT_TRUE(handle->Collect().status.ok());
  }
  service.Drain();
  EXPECT_EQ(service.stats().completed, 5u);
}

class JoinServicePolicyTest
    : public ::testing::TestWithParam<SchedulingPolicy> {};

TEST_P(JoinServicePolicyTest, TenantOrderingMatchesPolicy) {
  const SchedulingPolicy policy = GetParam();
  const Dataset dense_r = DenseSide(21);
  const Dataset dense_s = DenseSide(22);
  const Dataset small_r = SmallSide(23);
  const Dataset small_s = SmallSide(24);

  JoinServiceOptions options = BlockableOptions();
  options.max_pending = 16;
  options.policy = policy;
  JoinService service(options);

  // Wedge the dispatcher so the whole A/B burst queues before any of it is
  // scheduled -- ordering is then decided purely by the policy.
  auto blocker =
      service.Submit("warmup", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));  // dispatcher is running it, wedged

  std::vector<std::optional<AsyncJoinHandle>> handles;
  for (int i = 0; i < 8; ++i) {
    auto handle =
        service.Submit("A", kPartitionedEngine, small_r, small_s);
    ASSERT_TRUE(handle.ok());
    handles.emplace_back(std::move(*handle));
  }
  for (int i = 0; i < 2; ++i) {
    auto handle =
        service.Submit("B", kPartitionedEngine, small_r, small_s);
    ASSERT_TRUE(handle.ok());
    handles.emplace_back(std::move(*handle));
  }

  ASSERT_TRUE(blocker->Collect().status.ok());  // release the dispatcher
  service.Drain();

  const std::vector<std::string> order = service.completion_order();
  ASSERT_EQ(order.size(), 11u);  // warmup + 8 A + 2 B
  int last_b = -1;
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    if (order[i] == "B") last_b = i;
  }
  ASSERT_NE(last_b, -1);
  if (policy == SchedulingPolicy::kFcfs) {
    // Strict arrival order: B's requests drain after A's entire burst.
    EXPECT_EQ(last_b, 10);
  } else {
    // Fair share: the light tenant finishes within the first few slots
    // instead of queueing behind the heavy tenant's burst.
    EXPECT_LE(last_b, 4);
  }
  for (auto& handle : handles) {
    EXPECT_TRUE(handle->Collect().status.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, JoinServicePolicyTest,
                         ::testing::Values(SchedulingPolicy::kFcfs,
                                           SchedulingPolicy::kFairShare),
                         [](const auto& info) {
                           return info.param == SchedulingPolicy::kFcfs
                                      ? "Fcfs"
                                      : "FairShare";
                         });

// Deadline-aware admission: with the estimate seeded to a known value, a
// request whose deadline is below the estimated queue wait bounces with
// DeadlineExceeded immediately -- before queueing -- while patient and
// deadline-free requests are admitted. All queue states are pinned by the
// wedged-dispatcher pattern, so nothing here depends on timing.
TEST(JoinService, DeadlineAdmissionRejectsHopelessRequests) {
  const Dataset dense_r = DenseSide(61);
  const Dataset dense_s = DenseSide(62);
  const Dataset small_r = SmallSide(63);
  const Dataset small_s = SmallSide(64);

  JoinServiceOptions options = BlockableOptions();  // max_concurrent = 1
  options.initial_job_seconds_estimate = 10.0;      // deterministic estimate
  JoinService service(options);

  // The blocker carries no deadline: deadlines are now enforced after
  // admission too, and a deadline short enough to be interesting here
  // would get the wedged blocker killed mid-run by the watchdog.
  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok()) << blocker.status().ToString();
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));  // dispatcher wedged mid-stream

  // One job running, none pending: estimated wait = 1 / 1 * 10s.
  EXPECT_NEAR(service.EstimatedQueueWaitSeconds(), 10.0, 1e-9);

  RequestOptions tight;
  tight.deadline_seconds = 0.001;
  auto hopeless = service.Submit("tenant", kPartitionedEngine, small_r,
                                 small_s, {}, tight);
  ASSERT_FALSE(hopeless.ok());
  EXPECT_EQ(hopeless.status().code(), StatusCode::kDeadlineExceeded)
      << hopeless.status().ToString();

  RequestOptions patient;
  patient.deadline_seconds = 3600.0;
  auto admitted = service.Submit("tenant", kPartitionedEngine, small_r,
                                 small_s, {}, patient);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();

  // No deadline at all is never deadline-bounced.
  auto no_deadline =
      service.Submit("tenant", kPartitionedEngine, small_r, small_s);
  ASSERT_TRUE(no_deadline.ok());

  const JoinServiceStats mid = service.stats();
  EXPECT_EQ(mid.rejected, 1u);
  EXPECT_EQ(mid.rejected_deadline, 1u);
  EXPECT_EQ(mid.admitted, 3u);

  EXPECT_TRUE(blocker->Collect().status.ok());
  EXPECT_TRUE(admitted->Collect().status.ok());
  EXPECT_TRUE(no_deadline->Collect().status.ok());
  service.Drain();
  EXPECT_EQ(service.stats().completed, 3u);
}

// A free dispatcher slot means zero estimated queue wait: a request
// arriving while capacity is idle must never be deadline-bounced, no
// matter how pessimistic the per-job estimate is.
TEST(JoinService, DeadlineAdmissionNeverRejectsWhileASlotIsFree) {
  const Dataset dense_r = DenseSide(71);
  const Dataset dense_s = DenseSide(72);
  const Dataset small_r = SmallSide(73);
  const Dataset small_s = SmallSide(74);

  JoinServiceOptions options = BlockableOptions();
  options.max_concurrent = 2;  // a second, idle dispatcher slot
  options.initial_job_seconds_estimate = 3600.0;
  JoinService service(options);

  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));  // one slot wedged, one idle

  EXPECT_NEAR(service.EstimatedQueueWaitSeconds(), 0.0, 1e-9);
  // Far below the hour-long estimate -- this would be bounced if the wedged
  // slot were the only one -- yet roomy enough that the admitted request
  // also *finishes* within it (deadlines now kill expired requests
  // post-admission, so a microscopic deadline would turn this into an
  // expiry test).
  RequestOptions tight;
  tight.deadline_seconds = 30.0;
  auto admitted = service.Submit("tenant", kPartitionedEngine, small_r,
                                 small_s, {}, tight);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(service.stats().rejected_deadline, 0u);

  EXPECT_TRUE(admitted->Collect().status.ok());
  EXPECT_TRUE(blocker->Collect().status.ok());
  service.Drain();
}

// Once jobs complete, the measured-duration EWMA replaces the seed: an
// absurd initial estimate stops bouncing requests after the service has
// seen how fast jobs actually are.
TEST(JoinService, DeadlineEstimateTracksMeasuredDurations) {
  const Dataset dense_r = DenseSide(65);
  const Dataset dense_s = DenseSide(66);
  const Dataset small_r = SmallSide(67);
  const Dataset small_s = SmallSide(68);

  JoinServiceOptions options = BlockableOptions();
  options.initial_job_seconds_estimate = 3600.0;  // absurdly pessimistic
  JoinService service(options);

  // A fast job completes and overrides the hour-long seed.
  auto calibrate =
      service.Submit("cal", kPartitionedEngine, small_r, small_s);
  ASSERT_TRUE(calibrate.ok());
  EXPECT_TRUE(calibrate->Collect().status.ok());
  service.Drain();

  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));  // dispatcher wedged again

  // Estimated wait is now one measured small-join duration (milliseconds,
  // generously bounded below 30s even under sanitizers), so a request that
  // the seed estimate would have bounced admits.
  RequestOptions request;
  request.deadline_seconds = 30.0;
  auto admitted = service.Submit("tenant", kPartitionedEngine, small_r,
                                 small_s, {}, request);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(service.stats().rejected_deadline, 0u);

  EXPECT_TRUE(blocker->Collect().status.ok());
  EXPECT_TRUE(admitted->Collect().status.ok());
  service.Drain();
}

TEST(JoinService, CancellingQueuedRequestNeverRunsIt) {
  const Dataset dense_r = DenseSide(31);
  const Dataset dense_s = DenseSide(32);
  const Dataset small_r = SmallSide(33);
  const Dataset small_s = SmallSide(34);

  JoinService service(BlockableOptions());
  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));  // dispatcher is running it, wedged
  auto cancelled =
      service.Submit("victim", kPartitionedEngine, small_r, small_s);
  ASSERT_TRUE(cancelled.ok());

  cancelled->Cancel();  // while still queued
  ASSERT_TRUE(blocker->Collect().status.ok());
  EXPECT_EQ(cancelled->Wait().code(), StatusCode::kAborted);
  service.Drain();
  // Never-run requests are abandoned, not completed/served -- they must
  // not charge the tenant's fair-share account.
  const JoinServiceStats stats = service.stats();
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(stats.completed, 1u);  // the blocker only
}

TEST(JoinService, CancellingRunningRequestMidStreamIsClean) {
  const Dataset dense_r = DenseSide(41);
  const Dataset dense_s = DenseSide(42);
  const Dataset small_r = SmallSide(43);
  const Dataset small_s = SmallSide(44);

  JoinService service(BlockableOptions());
  auto running =
      service.Submit("tenant", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(running.ok());
  // Take one chunk to prove the stream was live, then cancel mid-stream.
  ResultChunk chunk;
  ASSERT_TRUE(running->Next(&chunk));
  running->Cancel();
  StreamSummary summary = running->Collect();
  EXPECT_EQ(summary.status.code(), StatusCode::kAborted);

  // The service must keep serving afterwards: no leaked tasks hold the
  // dispatcher or the pool (ASan/TSan double-check the "no leaks" half).
  auto after = service.Submit("tenant", kPartitionedEngine, small_r, small_s);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->Collect().status.ok());
  service.Drain();
}

TEST(JoinService, SequentialCollectOfConcurrentDenseStreamsDoesNotDeadlock) {
  const Dataset dense_r = DenseSide(61);
  const Dataset dense_s = DenseSide(62);
  JoinServiceOptions options;
  options.worker_threads = 2;
  options.max_concurrent = 2;
  options.max_pending = 4;
  options.stream.chunk_pairs = 32;
  options.stream.queue_capacity = 2;
  JoinService service(options);

  // Both requests run concurrently on the shared pool; the consumer
  // collects strictly sequentially, so B backs up against its bounded
  // queue while A is drained. Pool workers must never park on B's
  // backpressure (shared-pool streams stage in worker slots instead), or
  // A could starve and this test would deadlock.
  auto a = service.Submit("a", kPartitionedEngine, dense_r, dense_s);
  auto b = service.Submit("b", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  StreamSummary sa = a->Collect();
  StreamSummary sb = b->Collect();
  ASSERT_TRUE(sa.status.ok()) << sa.status.ToString();
  ASSERT_TRUE(sb.status.ok()) << sb.status.ToString();
  // Identical inputs -> identical result multisets through both streams.
  EXPECT_TRUE(JoinResult::SameMultiset(sa.run.result, sb.run.result));
  service.Drain();
}

TEST(JoinService, ShutdownAbandonsQueuedRequests) {
  const Dataset dense_r = DenseSide(51);
  const Dataset dense_s = DenseSide(52);
  const Dataset small_r = SmallSide(53);
  const Dataset small_s = SmallSide(54);

  std::optional<AsyncJoinHandle> blocker;
  std::vector<std::optional<AsyncJoinHandle>> queued;
  std::thread releaser;
  {
    JoinService service(BlockableOptions());
    auto b = service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
    ASSERT_TRUE(b.ok());
    blocker.emplace(std::move(*b));
    ResultChunk first;
    ASSERT_TRUE(blocker->Next(&first));  // dispatcher is running it, wedged
    for (int i = 0; i < 3; ++i) {
      auto handle =
          service.Submit("tenant", kPartitionedEngine, small_r, small_s);
      ASSERT_TRUE(handle.ok());
      queued.emplace_back(std::move(*handle));
    }
    // Release the wedged dispatcher shortly after the destructor has begun
    // abandoning the queue.
    releaser = std::thread([&] {
      // Generous delay: the destructor only needs the tiny window between
      // scope exit and taking its lock to mark the service stopping.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      blocker->Cancel();
    });
    // ~JoinService: abandons the 3 queued requests, then waits for the
    // (cancelled) blocker to retire.
  }
  releaser.join();
  EXPECT_EQ(blocker->Wait().code(), StatusCode::kAborted);
  for (auto& handle : queued) {
    EXPECT_EQ(handle->Wait().code(), StatusCode::kAborted);
  }
}

// Deadlines are enforced after admission too: a request that admission
// accepted but whose budget runs out while the dispatcher is still wedged
// never runs -- the watchdog abandons it and the stream closes
// DeadlineExceeded (not the generic Aborted of a consumer cancel).
TEST(JoinService, DeadlineExpiresWhileQueued) {
  const Dataset dense_r = DenseSide(81);
  const Dataset dense_s = DenseSide(82);
  const Dataset small_r = SmallSide(83);
  const Dataset small_s = SmallSide(84);

  JoinService service(BlockableOptions());  // max_concurrent = 1
  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  ResultChunk first;
  ASSERT_TRUE(blocker->Next(&first));  // dispatcher is running it, wedged

  RequestOptions request;
  request.deadline_seconds = 0.05;
  auto victim = service.Submit("victim", kPartitionedEngine, small_r,
                               small_s, {}, request);
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();

  // Wait() blocks until the watchdog expires the queued request: no
  // sleeps, no polling -- the terminal status is the synchronization.
  EXPECT_EQ(victim->Wait().code(), StatusCode::kDeadlineExceeded);

  ASSERT_TRUE(blocker->Collect().status.ok());
  service.Drain();
  const JoinServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_queued, 1u);
  EXPECT_EQ(stats.expired_running, 0u);
  EXPECT_EQ(stats.completed, 1u);  // the blocker only; the victim never ran
}

// Polls service stats until `pred` holds. The deadline watchdog runs on the
// real clock, so mid-run expiry is the one event these tests must wait for
// -- draining the stream earlier would unblock the wedged producer and let
// the join finish before its deadline.
template <typename Pred>
bool WaitForStats(const JoinService& service, Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred(service.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// Mid-run expiry: the join is already streaming when the budget runs out.
// The watchdog cancels it cooperatively and the stream closes
// DeadlineExceeded -- the delivered chunks remain a well-defined prefix.
TEST(JoinService, DeadlineExpiresMidRunCancelsWithDeadlineExceeded) {
  const Dataset dense_r = DenseSide(85);
  const Dataset dense_s = DenseSide(86);

  JoinService service(BlockableOptions());
  RequestOptions request;
  request.deadline_seconds = 0.05;
  // A free slot: picked up immediately, so the deadline expires mid-run
  // (the unconsumed dense stream wedges the producer far past 50ms).
  auto handle = service.Submit("tenant", kPartitionedEngine, dense_r,
                               dense_s, {}, request);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  // At least one chunk proves the join genuinely ran before expiring.
  ResultChunk chunk;
  ASSERT_TRUE(handle->Next(&chunk));
  EXPECT_FALSE(chunk.pairs.empty());

  // The producer is wedged on the unconsumed stream's backpressure; hold
  // off draining until the watchdog has killed it, or the drain itself
  // would let the join finish inside the budget.
  ASSERT_TRUE(WaitForStats(service, [](const JoinServiceStats& s) {
    return s.expired_running == 1;
  }));
  EXPECT_EQ(handle->Wait().code(), StatusCode::kDeadlineExceeded);
  service.Drain();
  const JoinServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_running, 1u);
  EXPECT_EQ(stats.expired_queued, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.completed, 0u);  // an expired run is not a completion
}

// Degraded-results mode: same mid-run expiry, but the stream closes OK and
// the chunks delivered before the kill are the official partial result --
// every pair genuine (a subset of the full join), none duplicated.
TEST(JoinService, DeadlineDegradeDeliversPartialPrefix) {
  const Dataset dense_r = DenseSide(87);
  const Dataset dense_s = DenseSide(88);
  EngineConfig config;
  auto full = RunJoin(kPartitionedEngine, dense_r, dense_s, config);
  ASSERT_TRUE(full.ok());

  JoinService service(BlockableOptions());
  RequestOptions request;
  request.deadline_seconds = 0.05;
  request.degrade_on_deadline = true;
  auto handle = service.Submit("tenant", kPartitionedEngine, dense_r,
                               dense_s, config, request);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  // As above: let the watchdog land the (degrading) kill before draining.
  ASSERT_TRUE(WaitForStats(service, [](const JoinServiceStats& s) {
    return s.expired_running == 1;
  }));
  StreamSummary summary = handle->Collect();
  EXPECT_TRUE(summary.status.ok()) << summary.status.ToString();
  // The kill raced the join, so the prefix may be anything from empty to
  // complete -- but every delivered pair must be a genuine result, with no
  // duplicates (multiset inclusion via std::includes over sorted pairs).
  ASSERT_LE(summary.run.result.size(), full->result.size());
  summary.run.result.Sort();
  full->result.Sort();
  EXPECT_TRUE(std::includes(
      full->result.pairs().begin(), full->result.pairs().end(),
      summary.run.result.pairs().begin(), summary.run.result.pairs().end()));

  service.Drain();
  const JoinServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_running, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

// The EWMA job-duration estimate decays while the service idles, pinned
// deterministically through the injected measurement clock: a 100s job
// poisons the estimate, two idle half-lives later the same deadline that
// was bounced admits. Deadlines themselves run on the real clock, so the
// fake clock cannot stall the watchdog.
TEST(JoinService, EwmaEstimateDecaysWhileIdle) {
  const Dataset dense_r = DenseSide(91);
  const Dataset dense_s = DenseSide(92);
  const Dataset small_r = SmallSide(93);
  const Dataset small_s = SmallSide(94);

  std::atomic<double> fake_now{0.0};
  JoinServiceOptions options = BlockableOptions();  // max_concurrent = 1
  options.ewma_idle_halflife_seconds = 50.0;
  options.clock_for_testing = [&fake_now] { return fake_now.load(); };
  JoinService service(options);

  // Calibration job: picked up at fake t=0, "runs" until we advance the
  // clock to 100 and release it -> measured duration exactly 100s.
  auto calibrate =
      service.Submit("cal", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(calibrate.ok());
  ResultChunk first;
  ASSERT_TRUE(calibrate->Next(&first));  // running (wedged), clock still 0
  fake_now.store(100.0);
  ASSERT_TRUE(calibrate->Collect().status.ok());
  service.Drain();

  // Wedge the dispatcher again so the estimate actually gates admission.
  auto blocker =
      service.Submit("blocker", kPartitionedEngine, dense_r, dense_s);
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(blocker->Next(&first));

  // No idle time yet: the estimate is the full measured 100s, so a 50s
  // deadline is hopeless.
  EXPECT_NEAR(service.EstimatedQueueWaitSeconds(), 100.0, 1e-6);
  RequestOptions request;
  request.deadline_seconds = 50.0;
  auto bounced = service.Submit("tenant", kPartitionedEngine, small_r,
                                small_s, {}, request);
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kDeadlineExceeded);

  // Two idle half-lives later the estimate has quartered: 25s fits a 50s
  // budget, so the identical request now admits.
  fake_now.store(200.0);
  EXPECT_NEAR(service.EstimatedQueueWaitSeconds(), 25.0, 1e-6);
  auto admitted = service.Submit("tenant", kPartitionedEngine, small_r,
                                 small_s, {}, request);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();

  ASSERT_TRUE(blocker->Collect().status.ok());
  EXPECT_TRUE(admitted->Collect().status.ok());
  service.Drain();
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
}

// The warm path end to end: datasets registered once, repeat SubmitNamed
// requests hit the plan cache (stats prove it) and still produce results
// bit-identical to the cold dataset-reference path.
TEST(JoinService, SubmitNamedServesWarmRequestsFromThePlanCache) {
  const Dataset r = testutil::Uniform(400, 95);
  const Dataset s = testutil::Skewed(400, 96);
  EngineConfig config;
  config.num_threads = 2;
  auto sync = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(sync.ok());

  JoinServiceOptions options;
  options.worker_threads = 4;
  options.max_concurrent = 2;
  JoinService service(options);
  service.RegisterDataset("r", r);
  service.RegisterDataset("s", s);

  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) {
    auto handle = service.SubmitNamed("tenant", kPartitionedEngine, "r", "s",
                                      config);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    StreamSummary summary = handle->Collect();
    ASSERT_TRUE(summary.status.ok()) << summary.status.ToString();
    EXPECT_TRUE(JoinResult::SameMultiset(sync->result, summary.run.result))
        << "request " << i;
    if (i > 0) {
      // Warm requests skip Plan: the "plan" stage is just the cache
      // lookup.
      EXPECT_LT(summary.run.timing.plan_seconds, 0.05);
    }
  }
  service.Drain();
  const JoinServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<std::size_t>(kRequests));
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, static_cast<std::size_t>(kRequests - 1));
  EXPECT_EQ(stats.plan_cache.entries, 1u);
  EXPECT_GT(stats.plan_cache.resident_bytes, 0u);
}

TEST(JoinService, SubmitNamedFailsFastForUnknownNamesAndEngines) {
  JoinService service(BlockableOptions());
  service.RegisterDataset("r", SmallSide(97));

  auto no_dataset =
      service.SubmitNamed("tenant", kPartitionedEngine, "r", "nope");
  ASSERT_FALSE(no_dataset.ok());
  EXPECT_EQ(no_dataset.status().code(), StatusCode::kNotFound);

  auto no_engine = service.SubmitNamed("tenant", "no-such-engine", "r", "r");
  ASSERT_FALSE(no_engine.ok());
  EXPECT_EQ(no_engine.status().code(), StatusCode::kNotFound);

  // Fail-fast rejections never touch admission accounting.
  EXPECT_EQ(service.stats().admitted, 0u);
}

}  // namespace
}  // namespace swiftspatial::exec
