// Compile-level test of the umbrella header: every public module must be
// includable together, and a minimal cross-module flow must work through
// it alone.
#include "swiftspatial/swiftspatial.h"

#include <gtest/gtest.h>

namespace swiftspatial {
namespace {

TEST(UmbrellaHeader, CrossModuleFlowCompilesAndRuns) {
  UniformConfig cfg;
  cfg.count = 200;
  cfg.seed = 1;
  const Dataset r = GenerateUniform(cfg);
  cfg.seed = 2;
  const Dataset s = GenerateUniform(cfg);

  BulkLoadOptions bl;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  JoinResult cpu = SyncTraversalDfs(rt, st);
  hw::Accelerator device;
  JoinResult dev;
  device.RunSyncTraversal(rt, st, &dev);
  EXPECT_TRUE(JoinResult::SameMultiset(cpu, dev));
}

TEST(UmbrellaHeader, TouchesEveryModule) {
  // One symbol per module keeps the include set honest.
  EXPECT_TRUE(Status::OK().ok());                                  // common
  EXPECT_TRUE(Intersects(Box(0, 0, 1, 1), Box(1, 1, 2, 2)));       // geometry
  EXPECT_EQ(HilbertD2XYInverse(1, 0, 0), 0u);                      // hilbert
  EXPECT_FALSE(Dataset("d", {Box(0, 0, 1, 1)}).IsPointDataset());  // datagen
  EXPECT_EQ(PackedRTree::StrideFor(16), 384u);                     // rtree
  EXPECT_STREQ(SpatialPredicateToString(SpatialPredicate::kWithin),
               "within");                                          // join
  EXPECT_GT(hw::PowerModel::FpgaWatts(16), 20.0);                  // hw
  EXPECT_STREQ(
      hw::OutOfMemoryStrategyToString(
          hw::OutOfMemoryStrategy::kMultipleDevices),
      "multiple-devices");                                         // multi_dev
  faas::FaasConfig fc;
  EXPECT_EQ(faas::SpatialJoinService(fc).units_per_kernel(), 16);  // faas
  RefinementOptions ro;
  EXPECT_EQ(ro.polygon_vertices, 8);                               // refine
}

}  // namespace
}  // namespace swiftspatial
