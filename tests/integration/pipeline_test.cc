// Integration tests of the full paper pipeline (§4, §5.8): index
// construction on the "host", transfer to the simulated accelerator for
// filtering, refinement on the CPU -- plus hybrid flows mixing dynamic
// index maintenance with accelerated joins (§5.9's iterative-join story).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/nested_loop.h"
#include "join/parallel_sync_traversal.h"
#include "refine/refinement.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(Pipeline, FilterOnAcceleratorRefineOnCpu) {
  const Dataset points = testutil::UniformPoints(2000, 160);
  const Dataset polys = testutil::Uniform(1500, 161, 1000.0, /*max_edge=*/15.0);

  // Host builds the indexes (as PostGIS/Sedona would maintain them).
  BulkLoadOptions bl;
  bl.max_entries = 16;
  bl.num_threads = 2;
  const PackedRTree pt = StrBulkLoad(points, bl);
  const PackedRTree yt = StrBulkLoad(polys, bl);

  // Accelerator filters.
  hw::AcceleratorConfig cfg;
  cfg.num_join_units = 8;
  JoinResult candidates;
  const auto report =
      hw::Accelerator(cfg).RunSyncTraversal(pt, yt, &candidates);
  EXPECT_EQ(report.num_results, candidates.size());

  // CPU refines.
  RefinementOptions ropt;
  ropt.num_threads = 2;
  RefinementStats rstats;
  JoinResult final_result =
      Refine(points, GeometryKind::kPoint, polys, GeometryKind::kPolygon,
             candidates.pairs(), ropt, &rstats);

  // Ground truth: brute-force filter + identical refinement.
  JoinResult bf = BruteForceJoin(points, polys);
  JoinResult expected =
      Refine(points, GeometryKind::kPoint, polys, GeometryKind::kPolygon,
             bf.pairs(), ropt);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, final_result));
  EXPECT_LE(final_result.size(), candidates.size());
}

TEST(Pipeline, IterativeJoinWithDynamicUpdates) {
  // §5.9: construct once, then iterate (update a few objects, re-join).
  Dataset r = testutil::Uniform(800, 162);
  const Dataset s = testutil::Uniform(800, 163);
  RTree dynamic_tree = RTree::BuildByInsertion(r);
  BulkLoadOptions bl;
  const PackedRTree st = StrBulkLoad(s, bl);

  hw::AcceleratorConfig cfg;
  cfg.num_join_units = 4;
  hw::Accelerator acc(cfg);
  Rng rng(164);

  for (int round = 0; round < 3; ++round) {
    // Move 50 random objects (delete + reinsert at a shifted location).
    for (int k = 0; k < 50; ++k) {
      const std::size_t i = rng.NextBelow(r.size());
      const Box old_box = r.box(i);
      ASSERT_TRUE(
          dynamic_tree.Delete(static_cast<ObjectId>(i), old_box).ok());
      Box moved = old_box;
      const Coord dx = static_cast<Coord>(rng.Uniform(-20, 20));
      const Coord dy = static_cast<Coord>(rng.Uniform(-20, 20));
      moved.min_x += dx;
      moved.max_x += dx;
      moved.min_y += dy;
      moved.max_y += dy;
      r.mutable_boxes()[i] = moved;
      dynamic_tree.Insert(static_cast<ObjectId>(i), moved);
    }
    ASSERT_TRUE(dynamic_tree.Validate().ok());

    // Snapshot-pack the live tree and join on the accelerator.
    JoinResult got;
    acc.RunSyncTraversal(dynamic_tree.Pack(), st, &got);
    JoinResult expected = BruteForceJoin(r, s);
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got)) << "round " << round;
  }
}

TEST(Pipeline, AcceleratorAgreesWithParallelCpuBaseline) {
  const Dataset r = testutil::Skewed(2500, 165);
  const Dataset s = testutil::Skewed(2500, 166);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  ParallelSyncTraversalOptions cpu;
  cpu.num_threads = 2;
  JoinResult cpu_result = ParallelSyncTraversal(rt, st, cpu);

  hw::AcceleratorConfig cfg;
  cfg.num_join_units = 16;
  JoinResult fpga_result;
  hw::Accelerator(cfg).RunSyncTraversal(rt, st, &fpga_result);
  EXPECT_TRUE(JoinResult::SameMultiset(cpu_result, fpga_result));
}

TEST(Pipeline, PbsmDeviceFlowEndToEnd) {
  const Dataset r = testutil::Uniform(2000, 167, 2000.0, /*max_edge=*/8.0);
  const Dataset s = testutil::Uniform(2000, 168, 2000.0, /*max_edge=*/8.0);
  HierarchicalPartitionOptions hp;
  hp.tile_cap = 16;
  hp.initial_grid = 16;
  const auto partition = PartitionHierarchical(r, s, hp);

  hw::AcceleratorConfig cfg;
  cfg.num_join_units = 8;
  JoinResult device;
  const auto report = hw::Accelerator(cfg).RunPbsm(r, s, partition, &device);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, device));
  // PBSM on-device must be single-phase: no intermediate task pairs.
  EXPECT_EQ(report.stats.intermediate_pairs, 0u);
}

TEST(Pipeline, AblationBurstBufferOffStillCorrect) {
  const Dataset r = testutil::Uniform(600, 169);
  const Dataset s = testutil::Uniform(600, 170);
  BulkLoadOptions bl;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);

  hw::AcceleratorConfig off;
  off.num_join_units = 4;
  off.burst_buffer_enabled = false;
  off.burst_loading_enabled = false;
  JoinResult got;
  const auto report_off = hw::Accelerator(off).RunSyncTraversal(rt, st, &got);

  hw::AcceleratorConfig on;
  on.num_join_units = 4;
  const auto report_on = hw::Accelerator(on).RunSyncTraversal(rt, st);

  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
  // Bursting exists because it is faster: disabling it must cost cycles.
  EXPECT_GT(report_off.kernel_cycles, report_on.kernel_cycles);
}

}  // namespace
}  // namespace swiftspatial
