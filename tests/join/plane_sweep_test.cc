#include "join/plane_sweep.h"

#include <gtest/gtest.h>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

std::vector<ObjectId> AllIds(const Dataset& d) {
  std::vector<ObjectId> ids(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) ids[i] = static_cast<ObjectId>(i);
  return ids;
}

TEST(PlaneSweep, MatchesNestedLoopUniform) {
  const Dataset r = testutil::Uniform(500, 40, 500.0, /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(500, 41, 500.0, /*max_edge=*/15.0);
  JoinResult nl, ps;
  NestedLoopTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &nl);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &ps);
  EXPECT_TRUE(JoinResult::SameMultiset(nl, ps));
}

TEST(PlaneSweep, MatchesNestedLoopSkewed) {
  const Dataset r = testutil::Skewed(600, 42);
  const Dataset s = testutil::Skewed(600, 43);
  JoinResult nl, ps;
  NestedLoopTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &nl);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &ps);
  EXPECT_TRUE(JoinResult::SameMultiset(nl, ps));
}

TEST(PlaneSweep, FewerChecksThanNestedLoopWhenSparse) {
  // Sparse unit squares: the sweep's active sets stay small, so it performs
  // far fewer comparisons than |R| x |S| -- the software rationale of §3.2.
  const Dataset r = testutil::Uniform(1000, 44, 5000.0, /*max_edge=*/1.0);
  const Dataset s = testutil::Uniform(1000, 45, 5000.0, /*max_edge=*/1.0);
  JoinStats nl_stats, ps_stats;
  JoinResult nl, ps;
  NestedLoopTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &nl, &nl_stats);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &ps, &ps_stats);
  EXPECT_TRUE(JoinResult::SameMultiset(nl, ps));
  EXPECT_LT(ps_stats.predicate_evaluations,
            nl_stats.predicate_evaluations / 10);
}

TEST(PlaneSweep, EmptySides) {
  const Dataset r = testutil::Uniform(100, 46);
  const Dataset empty("e", {});
  JoinResult out;
  PlaneSweepTileJoin(r, empty, AllIds(r), {}, nullptr, &out);
  EXPECT_TRUE(out.empty());
  PlaneSweepTileJoin(empty, r, {}, AllIds(r), nullptr, &out);
  EXPECT_TRUE(out.empty());
}

TEST(PlaneSweep, IdenticalMinXTies) {
  // Many objects sharing min_x stress the tie-break path.
  std::vector<Box> boxes;
  for (int i = 0; i < 20; ++i) {
    boxes.push_back(Box(10, static_cast<Coord>(i), 12,
                        static_cast<Coord>(i + 2)));
  }
  const Dataset r("ties_r", boxes);
  const Dataset s("ties_s", boxes);
  JoinResult nl, ps;
  NestedLoopTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &nl);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &ps);
  EXPECT_TRUE(JoinResult::SameMultiset(nl, ps));
}

TEST(PlaneSweep, DedupTileRuleApplied) {
  const Dataset r = testutil::Uniform(300, 47, 200.0, /*max_edge=*/30.0);
  const Dataset s = testutil::Uniform(300, 48, 200.0, /*max_edge=*/30.0);
  const Box left_tile(0, 0, 100, 200);
  const Box right_tile(100, 0, 200, 200);
  JoinResult left, right, whole;
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), &left_tile, &left);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), &right_tile, &right);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &whole);
  // The two halves partition the results (every reference point lies in
  // exactly one tile).
  left.Merge(std::move(right));
  EXPECT_TRUE(JoinResult::SameMultiset(whole, left));
}

TEST(PlaneSweep, PointDatasets) {
  const Dataset r = testutil::UniformPoints(400, 49, 100.0);
  const Dataset s = testutil::Uniform(400, 50, 100.0, /*max_edge=*/5.0);
  JoinResult nl, ps;
  NestedLoopTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &nl);
  PlaneSweepTileJoin(r, s, AllIds(r), AllIds(s), nullptr, &ps);
  EXPECT_TRUE(JoinResult::SameMultiset(nl, ps));
}

}  // namespace
}  // namespace swiftspatial
