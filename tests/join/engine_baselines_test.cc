#include "join/engine_baselines.h"

#include <gtest/gtest.h>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(InterpretedEngineJoin, MatchesBruteForce) {
  const Dataset r = testutil::Uniform(600, 100);
  const Dataset s = testutil::Uniform(600, 101);
  InterpretedEngineOptions opt;
  JoinResult got = InterpretedEngineJoin(r, s, opt);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(InterpretedEngineJoin, ParallelWorkersAgree) {
  const Dataset r = testutil::Skewed(800, 102);
  const Dataset s = testutil::Uniform(800, 103);
  InterpretedEngineOptions serial, parallel;
  serial.num_threads = 1;
  parallel.num_threads = 4;
  JoinResult a = InterpretedEngineJoin(r, s, serial);
  JoinResult b = InterpretedEngineJoin(r, s, parallel);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

TEST(InterpretedEngineJoin, CountsCandidateEvaluations) {
  const Dataset r = testutil::Uniform(300, 104);
  const Dataset s = testutil::Uniform(300, 105);
  JoinStats stats;
  JoinResult got = InterpretedEngineJoin(r, s, {}, &stats);
  // Every emitted pair was evaluated; the index may produce extra
  // candidates but never fewer evaluations than results.
  EXPECT_GE(stats.predicate_evaluations, got.size());
  EXPECT_EQ(stats.tasks, r.size());
}

TEST(BigDataFrameworkJoin, MatchesBruteForce) {
  const Dataset r = testutil::Uniform(600, 106, 1000.0, /*max_edge=*/25.0);
  const Dataset s = testutil::Uniform(600, 107, 1000.0, /*max_edge=*/25.0);
  BigDataFrameworkOptions opt;
  opt.num_partitions = 64;
  JoinResult got = BigDataFrameworkJoin(r, s, opt);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(BigDataFrameworkJoin, NoDuplicatesAcrossPartitions) {
  // Big objects span many grid tiles; the shuffle multi-assigns them and the
  // reference-point rule must dedup.
  const Dataset r = testutil::Uniform(200, 108, 300.0, /*max_edge=*/60.0);
  const Dataset s = testutil::Uniform(200, 109, 300.0, /*max_edge=*/60.0);
  BigDataFrameworkOptions opt;
  opt.num_partitions = 16;
  JoinResult got = BigDataFrameworkJoin(r, s, opt);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

class BigDataPartitionsTest : public ::testing::TestWithParam<int> {};

TEST_P(BigDataPartitionsTest, PartitionCountInvariant) {
  const Dataset r = testutil::Skewed(500, 110);
  const Dataset s = testutil::Skewed(500, 111);
  BigDataFrameworkOptions opt;
  opt.num_partitions = GetParam();
  opt.num_threads = 2;
  JoinResult got = BigDataFrameworkJoin(r, s, opt);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

INSTANTIATE_TEST_SUITE_P(Partitions, BigDataPartitionsTest,
                         ::testing::Values(1, 4, 16, 64, 256));

}  // namespace
}  // namespace swiftspatial
