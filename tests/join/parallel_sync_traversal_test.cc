#include "join/parallel_sync_traversal.h"

#include <gtest/gtest.h>

#include <tuple>

#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

PackedRTree Tree(const Dataset& d, int max_entries = 16) {
  BulkLoadOptions opt;
  opt.max_entries = max_entries;
  return StrBulkLoad(d, opt);
}

class ParallelSyncTest
    : public ::testing::TestWithParam<
          std::tuple<TraversalStrategy, Schedule, std::size_t>> {};

TEST_P(ParallelSyncTest, MatchesSequentialDfs) {
  const auto [strategy, schedule, threads] = GetParam();
  const Dataset r = testutil::Uniform(1200, 80);
  const Dataset s = testutil::Skewed(1200, 81);
  const PackedRTree rt = Tree(r), st = Tree(s);

  JoinResult expected = SyncTraversalDfs(rt, st);

  ParallelSyncTraversalOptions opt;
  opt.num_threads = threads;
  opt.strategy = strategy;
  opt.schedule = schedule;
  JoinResult got = ParallelSyncTraversal(rt, st, opt);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ParallelSyncTest,
    ::testing::Combine(::testing::Values(TraversalStrategy::kBfs,
                                         TraversalStrategy::kBfsDfs),
                       ::testing::Values(Schedule::kStatic,
                                         Schedule::kDynamic),
                       ::testing::Values<std::size_t>(1, 2, 4)));

TEST(ParallelSyncTraversal, StatsMatchSequential) {
  const Dataset r = testutil::Uniform(800, 82);
  const Dataset s = testutil::Uniform(800, 83);
  const PackedRTree rt = Tree(r), st = Tree(s);
  JoinStats seq, par;
  SyncTraversalDfs(rt, st, &seq);
  ParallelSyncTraversalOptions opt;
  opt.num_threads = 4;
  ParallelSyncTraversal(rt, st, opt, &par);
  EXPECT_EQ(seq.tasks, par.tasks);
  EXPECT_EQ(seq.predicate_evaluations, par.predicate_evaluations);
}

TEST(ParallelSyncTraversal, BfsDfsSwitchThreshold) {
  // A tiny switch factor forces the DFS phase almost immediately; results
  // must be unaffected.
  const Dataset r = testutil::Uniform(1000, 84);
  const Dataset s = testutil::Uniform(1000, 85);
  const PackedRTree rt = Tree(r), st = Tree(s);
  ParallelSyncTraversalOptions opt;
  opt.num_threads = 2;
  opt.strategy = TraversalStrategy::kBfsDfs;
  opt.dfs_switch_factor = 1;
  JoinResult got = ParallelSyncTraversal(rt, st, opt);
  JoinResult expected = SyncTraversalDfs(rt, st);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(ParallelSyncTraversal, TrivialTreesSingleLevel) {
  // Trees whose roots are leaves: the frontier never grows.
  const Dataset r = testutil::Uniform(5, 86);
  const Dataset s = testutil::Uniform(5, 87);
  const PackedRTree rt = Tree(r), st = Tree(s);
  ASSERT_EQ(rt.height(), 1);
  ParallelSyncTraversalOptions opt;
  opt.num_threads = 4;
  JoinResult got = ParallelSyncTraversal(rt, st, opt);
  JoinResult expected = SyncTraversalDfs(rt, st);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(TraversalStrategyToString, Names) {
  EXPECT_STREQ(TraversalStrategyToString(TraversalStrategy::kBfs), "BFS");
  EXPECT_STREQ(TraversalStrategyToString(TraversalStrategy::kBfsDfs),
               "BFS-DFS");
}

}  // namespace
}  // namespace swiftspatial
