#include "join/cuspatial_like.h"

#include <gtest/gtest.h>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(CuSpatialLikeJoin, MatchesBruteForce) {
  const Dataset points = testutil::UniformPoints(2000, 120);
  const Dataset polys = testutil::Uniform(500, 121, 1000.0, /*max_edge=*/30.0);
  CuSpatialLikeOptions opt;
  JoinResult got = CuSpatialLikeJoin(points, polys, opt);
  JoinResult expected = BruteForceJoin(points, polys);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(CuSpatialLikeJoin, BatchBoundaryInvariant) {
  // Results must not depend on how the polygon stream is batched.
  const Dataset points = testutil::UniformPoints(1500, 122);
  const Dataset polys = testutil::Uniform(777, 123, 1000.0, /*max_edge=*/20.0);
  CuSpatialLikeOptions small_batches, one_batch;
  small_batches.batch_size = 100;  // forces 8 batches, last one partial
  one_batch.batch_size = 1 << 20;
  JoinResult a = CuSpatialLikeJoin(points, polys, small_batches);
  JoinResult b = CuSpatialLikeJoin(points, polys, one_batch);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

TEST(CuSpatialLikeJoin, TwoPassCountsMatchWrites) {
  const Dataset points = testutil::UniformPoints(1000, 124);
  const Dataset polys = testutil::Uniform(300, 125, 1000.0, /*max_edge=*/40.0);
  JoinStats stats;
  CuSpatialLikeOptions opt;
  opt.batch_size = 128;
  JoinResult got = CuSpatialLikeJoin(points, polys, opt, &stats);
  // Each result traverses the index twice (count pass + write pass).
  EXPECT_EQ(stats.predicate_evaluations, 2 * got.size());
  EXPECT_EQ(stats.tasks, (polys.size() + 127) / 128);
}

TEST(CuSpatialLikeJoin, ParallelThreadsAgree) {
  const Dataset points = testutil::UniformPoints(2000, 126);
  const Dataset polys = testutil::Skewed(400, 127);
  CuSpatialLikeOptions serial, parallel;
  serial.num_threads = 1;
  parallel.num_threads = 4;
  JoinResult a = CuSpatialLikeJoin(points, polys, serial);
  JoinResult b = CuSpatialLikeJoin(points, polys, parallel);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

TEST(CuSpatialLikeJoin, EmptyInputs) {
  const Dataset none("none", {});
  const Dataset polys = testutil::Uniform(50, 128);
  EXPECT_TRUE(CuSpatialLikeJoin(none, polys, {}).empty());
  EXPECT_TRUE(CuSpatialLikeJoin(testutil::UniformPoints(50, 129), none, {})
                  .empty());
}

TEST(CuSpatialLikeJoin, LeafCapacityInvariant) {
  const Dataset points = testutil::UniformPoints(1000, 130);
  const Dataset polys = testutil::Uniform(200, 131, 1000.0, /*max_edge=*/35.0);
  CuSpatialLikeOptions coarse, fine;
  coarse.quadtree_leaf_capacity = 512;
  fine.quadtree_leaf_capacity = 8;
  JoinResult a = CuSpatialLikeJoin(points, polys, coarse);
  JoinResult b = CuSpatialLikeJoin(points, polys, fine);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

}  // namespace
}  // namespace swiftspatial
