// Tests for the unified JoinEngine API: registry lookup and registration,
// per-engine config validation through Status, stage timing, and the
// PartitionedDriver (cross-cell duplicate elimination, thread-count
// determinism, lock-free merge).
#include "join/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "join/nested_loop.h"
#include "join/partitioned_driver.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(EngineRegistry, AllBuiltinsRegistered) {
  const std::vector<std::string> names = EngineRegistry::Global().Names();
  for (const char* expected :
       {kNestedLoopEngine, kPlaneSweepEngine, kPbsmEngine,
        kCuSpatialLikeEngine, kSyncTraversalEngine,
        kParallelSyncTraversalEngine, kPartitionedEngine, kSimdEngine,
        kAccelBfsEngine, kAccelPbsmEngine, kAccelPbsmMultiEngine,
        kDistPbsmEngine, kDistAccelEngine, kInterpretedEngineBaseline,
        kBigDataFrameworkBaseline}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected) == 1)
        << "missing builtin engine: " << expected;
    EXPECT_TRUE(EngineRegistry::Global().Contains(expected));
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(EngineRegistry, UnknownEngineIsNotFound) {
  const auto created = EngineRegistry::Global().Create("no_such_engine");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
  // The error lists the registered names so callers can self-diagnose.
  EXPECT_NE(created.status().message().find(kNestedLoopEngine),
            std::string::npos);

  const Dataset r = testutil::Uniform(8, 1);
  const auto run = RunJoin("no_such_engine", r, r);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST(EngineRegistry, RejectsEmptyNameAndDuplicates) {
  EngineRegistry registry;
  EXPECT_EQ(registry
                .Register("", [](const EngineConfig&) {
                  return std::unique_ptr<JoinEngine>();
                })
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("x", nullptr).code(),
            StatusCode::kInvalidArgument);

  auto factory = [](const EngineConfig& config) {
    auto created = EngineRegistry::Global().Create(kNestedLoopEngine, config);
    return std::move(*created);
  };
  ASSERT_TRUE(registry.Register("x", factory).ok());
  EXPECT_EQ(registry.Register("x", factory).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.Contains("x"));
}

TEST(EngineRegistry, CustomEngineRunsThroughRegistry) {
  EngineRegistry registry;
  ASSERT_TRUE(registry
                  .Register("alias_nested_loop",
                            [](const EngineConfig& config) {
                              auto created = EngineRegistry::Global().Create(
                                  kNestedLoopEngine, config);
                              return std::move(*created);
                            })
                  .ok());
  const Dataset r = testutil::Uniform(64, 7);
  const Dataset s = testutil::Uniform(64, 8);
  auto engine = registry.Create("alias_nested_loop");
  ASSERT_TRUE(engine.ok());
  auto run = (*engine)->Run(r, s);
  ASSERT_TRUE(run.ok());
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, run->result));
}

// ---------------------------------------------------------------------------
// Config validation through Status.
// ---------------------------------------------------------------------------

TEST(EngineConfigValidation, RejectsBadConfigs) {
  const Dataset r = testutil::Uniform(16, 1);
  const Dataset s = testutil::Uniform(16, 2);

  struct Case {
    const char* engine;
    EngineConfig config;
  };
  std::vector<Case> cases;
  {
    EngineConfig c;
    c.num_threads = 0;  // every engine rejects this
    cases.push_back({kPartitionedEngine, c});
    cases.push_back({kPbsmEngine, c});
    cases.push_back({kNestedLoopEngine, c});
  }
  {
    EngineConfig c;
    c.num_partitions = 0;
    cases.push_back({kPbsmEngine, c});
    cases.push_back({kBigDataFrameworkBaseline, c});
  }
  {
    EngineConfig c;
    c.node_capacity = 1;
    cases.push_back({kSyncTraversalEngine, c});
    cases.push_back({kParallelSyncTraversalEngine, c});
  }
  {
    EngineConfig c;
    c.dfs_switch_factor = 0;
    cases.push_back({kParallelSyncTraversalEngine, c});
  }
  {
    EngineConfig c;
    c.batch_size = 0;
    cases.push_back({kCuSpatialLikeEngine, c});
  }
  {
    EngineConfig c;
    c.grid_cols = 4;  // rows left 0: half-specified grid
    cases.push_back({kPartitionedEngine, c});
  }
  {
    EngineConfig c;
    c.grid_cols = c.grid_rows = 1 << 20;  // cols * rows would overflow int
    cases.push_back({kPartitionedEngine, c});
  }
  for (const Case& test_case : cases) {
    const auto run = RunJoin(test_case.engine, r, s, test_case.config);
    ASSERT_FALSE(run.ok()) << test_case.engine;
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument)
        << test_case.engine << ": " << run.status().ToString();
  }
}

// Reject-at-ingest policy for malformed geometry: every engine refuses
// datasets containing NaN/infinite coordinates or inverted boxes at Plan
// time, instead of each algorithm (indexes, partitioners, dedup rule)
// meeting them with unspecified behaviour deep inside the join.
TEST(EngineConfigValidation, RejectsNonFiniteAndInvertedBoxes) {
  constexpr Coord kNaN = std::numeric_limits<Coord>::quiet_NaN();
  constexpr Coord kInf = std::numeric_limits<Coord>::infinity();
  const Dataset good("good", {Box(0, 0, 1, 1), Box(2, 2, 3, 3)});
  const std::vector<Dataset> bad = {
      Dataset("nan_min", {Box(0, 0, 1, 1), Box(kNaN, 0, 1, 1)}),
      Dataset("nan_max", {Box(0, 0, 1, kNaN)}),
      Dataset("pos_inf", {Box(0, 0, kInf, 1)}),
      Dataset("neg_inf", {Box(-kInf, 0, 1, 1)}),
      Dataset("inverted", {Box(5, 5, 3, 3)}),
  };
  for (const std::string& name : EngineRegistry::Global().Names()) {
    for (const Dataset& d : bad) {
      for (const bool bad_side_is_r : {true, false}) {
        const auto run = bad_side_is_r ? RunJoin(name, d, good)
                                       : RunJoin(name, good, d);
        ASSERT_FALSE(run.ok())
            << name << " accepted dataset " << d.name();
        EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument)
            << name << " on " << d.name() << ": " << run.status().ToString();
      }
    }
  }
}

TEST(EngineConfigValidation, ValidationCanBeDisabled) {
  // validate_inputs=false skips the scan; both the scalar predicate and the
  // SIMD kernel treat NaN comparisons as false (IEEE), so a NaN box simply
  // matches nothing in the predicate-only engines.
  constexpr Coord kNaN = std::numeric_limits<Coord>::quiet_NaN();
  const Dataset r("with_nan", {Box(0, 0, 1, 1), Box(kNaN, 0, 1, 1)});
  const Dataset s("good", {Box(0, 0, 2, 2)});
  EngineConfig config;
  config.validate_inputs = false;
  auto run = RunJoin(kNestedLoopEngine, r, s, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->result.size(), 1u);
  EXPECT_EQ(run->result.pairs()[0], (ResultPair{0, 0}));
}

TEST(EngineConfigValidation, CuSpatialRequiresPointR) {
  const Dataset rects = testutil::Uniform(32, 3);
  const auto run = RunJoin(kCuSpatialLikeEngine, rects, rects);
  ASSERT_FALSE(run.ok());
  // NotSupported (engine inapplicable to a well-formed input), which bench
  // harnesses treat as an expected skip rather than a failed row.
  EXPECT_EQ(run.status().code(), StatusCode::kNotSupported);
}

TEST(EngineLifecycle, ExecuteBeforePlanFails) {
  auto engine = EngineRegistry::Global().Create(kNestedLoopEngine);
  ASSERT_TRUE(engine.ok());
  JoinResult out;
  JoinStats stats;
  EXPECT_FALSE((*engine)->Execute(&out, &stats).ok());
}

// Execute overwrites *out on every call: repeated Execute after one Plan
// must yield identical results for every engine, including the tile-join
// based ones whose implementations append into the output.
TEST(EngineLifecycle, RepeatedExecuteIsIdempotent) {
  const Dataset r = testutil::Uniform(128, 13);
  const Dataset s = testutil::Uniform(128, 14);
  for (const std::string& name : EngineRegistry::Global().Names()) {
    if (name == kCuSpatialLikeEngine) continue;  // needs a point R
    auto engine = EngineRegistry::Global().Create(name);
    ASSERT_TRUE(engine.ok()) << name;
    ASSERT_TRUE((*engine)->Plan(r, s).ok()) << name;
    JoinResult first, second;
    ASSERT_TRUE((*engine)->Execute(&second, nullptr).ok()) << name;
    first = second;  // keep a copy; reuse `second` for the repeat call
    ASSERT_TRUE((*engine)->Execute(&second, nullptr).ok()) << name;
    EXPECT_TRUE(JoinResult::SameMultiset(first, second))
        << name << ": repeated Execute diverged (" << first.size() << " vs "
        << second.size() << " pairs)";
  }
}

TEST(EngineRun, ReportsStageTimingAndStats) {
  const Dataset r = testutil::Uniform(256, 11);
  const Dataset s = testutil::Uniform(256, 12);
  auto run = RunJoin(kSyncTraversalEngine, r, s);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->result.size(), 0u);
  EXPECT_GT(run->stats.predicate_evaluations, 0u);
  EXPECT_GE(run->timing.plan_seconds, 0.0);
  EXPECT_GE(run->timing.execute_seconds, 0.0);
  EXPECT_GE(run->timing.total_seconds(),
            run->timing.plan_seconds + run->timing.execute_seconds - 1e-12);
}

// ---------------------------------------------------------------------------
// PartitionedDriver.
// ---------------------------------------------------------------------------

// Objects spanning many cells must still be reported exactly once: the
// datasets use boxes large relative to the cell size so almost every pair is
// seen by several cells.
TEST(PartitionedDriver, EliminatesCrossCellDuplicates) {
  const Dataset r = testutil::Uniform(300, 21, /*map=*/100.0, /*max_edge=*/25.0);
  const Dataset s = testutil::Uniform(300, 22, /*map=*/100.0, /*max_edge=*/25.0);

  PartitionedDriverOptions options;
  options.grid_cols = 8;  // cell edge 12.5 < max box edge 25: heavy overlap
  options.grid_rows = 8;
  options.num_threads = 2;
  PartitionedDriver driver(options);
  ASSERT_TRUE(driver.Plan(r, s).ok());
  EXPECT_EQ(driver.grid_cols(), 8);
  EXPECT_EQ(driver.grid_rows(), 8);
  EXPECT_GT(driver.num_tasks(), 1u);

  JoinStats stats;
  JoinResult got = driver.Execute(&stats);
  EXPECT_GT(stats.tasks, 1u);

  // No pair may appear twice.
  got.Sort();
  const auto& pairs = got.pairs();
  EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end())
      << "duplicate pairs survived reference-point dedup";

  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(PartitionedDriver, MergeIsDeterministicAcrossThreadCounts) {
  const Dataset r = testutil::Uniform(500, 31, /*map=*/200.0, /*max_edge=*/8.0);
  const Dataset s = testutil::Uniform(500, 32, /*map=*/200.0, /*max_edge=*/8.0);

  std::vector<ResultPair> reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    PartitionedDriverOptions options;
    options.num_threads = threads;
    PartitionedDriver driver(options);
    ASSERT_TRUE(driver.Plan(r, s).ok());
    JoinResult got = driver.Execute();
    got.Sort();
    if (reference.empty()) {
      reference = got.pairs();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(got.pairs(), reference) << "threads=" << threads;
    }
  }
}

TEST(PartitionedDriver, TileJoinVariantsAgree) {
  const Dataset r = testutil::Uniform(400, 41);
  const Dataset s = testutil::Uniform(400, 42);
  JoinResult reference;
  for (const TileJoin tile_join :
       {TileJoin::kPlaneSweep, TileJoin::kNestedLoop, TileJoin::kSimd}) {
    PartitionedDriverOptions options;
    options.tile_join = tile_join;
    options.num_threads = 2;
    PartitionedDriver driver(options);
    ASSERT_TRUE(driver.Plan(r, s).ok());
    JoinResult got = driver.Execute();
    if (tile_join == TileJoin::kPlaneSweep) {
      reference = std::move(got);
      EXPECT_GT(reference.size(), 0u);
    } else {
      EXPECT_TRUE(JoinResult::SameMultiset(reference, got))
          << TileJoinToString(tile_join);
    }
  }
}

TEST(PartitionedDriver, EmptyAndDisjointInputs) {
  const Dataset empty;
  const Dataset some = testutil::Uniform(10, 51);

  PartitionedDriver driver;
  ASSERT_TRUE(driver.Plan(empty, some).ok());
  EXPECT_EQ(driver.Execute().size(), 0u);
  EXPECT_EQ(driver.num_tasks(), 0u);

  PartitionedDriver driver2;
  ASSERT_TRUE(driver2.Plan(some, empty).ok());
  EXPECT_EQ(driver2.Execute().size(), 0u);

  // Far-apart datasets: plenty of cells, zero co-populated ones.
  Dataset left("left", {Box(0, 0, 1, 1), Box(2, 2, 3, 3)});
  Dataset right("right", {Box(100, 100, 101, 101)});
  PartitionedDriver driver3;
  ASSERT_TRUE(driver3.Plan(left, right).ok());
  EXPECT_EQ(driver3.Execute().size(), 0u);
}

// The engine wrapper must agree with the nested-loop oracle and dedup under
// auto-sized grids too.
TEST(PartitionedEngine, AgreesWithOracleThroughRegistry) {
  const Dataset r = testutil::Uniform(600, 61);
  const Dataset s = testutil::Skewed(600, 62);
  EngineConfig config;
  config.num_threads = 4;
  auto run = RunJoin(kPartitionedEngine, r, s, config);
  ASSERT_TRUE(run.ok());
  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_GT(expected.size(), 0u);  // the comparison must not be vacuous
  EXPECT_TRUE(JoinResult::SameMultiset(expected, run->result));
  EXPECT_GT(run->stats.tasks, 0u);
}

}  // namespace
}  // namespace swiftspatial
