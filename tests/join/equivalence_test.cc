// Cross-algorithm equivalence property test: every join implementation in
// the library -- CPU algorithms, system-style baselines, and the simulated
// accelerator in both modes -- must produce the identical result multiset on
// the same inputs, across dataset shapes and sizes. This is the library's
// strongest integration invariant.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "join/engine_baselines.h"
#include "join/nested_loop.h"
#include "join/parallel_sync_traversal.h"
#include "join/pbsm.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

enum class Shape { kUniform, kSkewed, kMixed };

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kUniform:
      return "Uniform";
    case Shape::kSkewed:
      return "Skewed";
    case Shape::kMixed:
      return "Mixed";
  }
  return "?";
}

class JoinEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Shape, int>> {
 protected:
  void SetUp() override {
    const auto [shape, scale] = GetParam();
    switch (shape) {
      case Shape::kUniform:
        r_ = testutil::Uniform(scale, 1000 + scale);
        s_ = testutil::Uniform(scale, 2000 + scale);
        break;
      case Shape::kSkewed:
        r_ = testutil::Skewed(scale, 3000 + scale);
        s_ = testutil::Skewed(scale, 4000 + scale);
        break;
      case Shape::kMixed:
        r_ = testutil::UniformPoints(scale, 5000 + scale);
        s_ = testutil::Skewed(scale, 6000 + scale);
        break;
    }
    expected_ = BruteForceJoin(r_, s_);
  }

  void Check(JoinResult got, const std::string& label) {
    EXPECT_TRUE(JoinResult::SameMultiset(expected_, got))
        << label << " diverges: expected " << expected_.size() << " pairs, got "
        << got.size();
  }

  Dataset r_, s_;
  JoinResult expected_;
};

TEST_P(JoinEquivalenceTest, AllAlgorithmsAgree) {
  BulkLoadOptions bl;
  bl.max_entries = 8;
  const PackedRTree rt = StrBulkLoad(r_, bl);
  const PackedRTree st = StrBulkLoad(s_, bl);

  Check(SyncTraversalDfs(rt, st), "SyncTraversalDfs");
  Check(SyncTraversalBfs(rt, st), "SyncTraversalBfs");

  ParallelSyncTraversalOptions pst;
  pst.num_threads = 2;
  Check(ParallelSyncTraversal(rt, st, pst), "ParallelSyncTraversal");

  PbsmOptions pbsm;
  pbsm.num_partitions = 32;
  pbsm.num_threads = 2;
  Check(PbsmSpatialJoin(r_, s_, pbsm), "PbsmSpatialJoin");

  Check(InterpretedEngineJoin(r_, s_, {}), "InterpretedEngineJoin");

  BigDataFrameworkOptions bdf;
  bdf.num_partitions = 16;
  Check(BigDataFrameworkJoin(r_, s_, bdf), "BigDataFrameworkJoin");

  // Hilbert-loaded trees must agree with STR-loaded ones.
  BulkLoadOptions hil;
  hil.max_entries = 16;
  Check(SyncTraversalDfs(HilbertBulkLoad(r_, hil), HilbertBulkLoad(s_, hil)),
        "Hilbert trees");

  // Simulated accelerator, both control flows.
  hw::AcceleratorConfig acfg;
  acfg.num_join_units = 4;
  hw::Accelerator acc(acfg);
  JoinResult acc_sync;
  acc.RunSyncTraversal(rt, st, &acc_sync);
  Check(std::move(acc_sync), "Accelerator sync traversal");

  HierarchicalPartitionOptions hp;
  hp.tile_cap = 8;
  JoinResult acc_pbsm;
  acc.RunPbsm(r_, s_, PartitionHierarchical(r_, s_, hp), &acc_pbsm);
  Check(std::move(acc_pbsm), "Accelerator PBSM");
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScales, JoinEquivalenceTest,
    ::testing::Combine(::testing::Values(Shape::kUniform, Shape::kSkewed,
                                         Shape::kMixed),
                       ::testing::Values(64, 512, 1500)),
    [](const ::testing::TestParamInfo<JoinEquivalenceTest::ParamType>& info) {
      return ShapeName(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Registry-driven property oracle: every engine in the global registry is
// checked pair-wise against the nested-loop reference on random datasets at
// several densities, across thread counts 1/2/8. New engines registered in
// EngineRegistry::Global() are picked up automatically -- registering an
// algorithm is what opts it into the oracle.
// ---------------------------------------------------------------------------

/// cuSpatial's structure only supports point-in-polygon joins; every other
/// engine handles the general rectangle-rectangle case.
bool IsPointOnlyEngine(const std::string& name) {
  return name == kCuSpatialLikeEngine;
}

struct DensityCase {
  const char* label;
  double map_size;
  double max_edge;  // larger edges on the same map = denser joins
};

class EngineOracleTest : public ::testing::TestWithParam<DensityCase> {};

TEST_P(EngineOracleTest, EveryRegisteredEngineMatchesNestedLoop) {
  const DensityCase density = GetParam();
  const uint64_t scale = 400;
  const Dataset rects_r =
      testutil::Uniform(scale, 71, density.map_size, density.max_edge);
  const Dataset rects_s =
      testutil::Skewed(scale, 72, density.map_size);
  const Dataset points_r = testutil::UniformPoints(scale, 73, density.map_size);

  JoinResult rect_oracle = BruteForceJoin(rects_r, rects_s);
  JoinResult point_oracle = BruteForceJoin(points_r, rects_s);

  for (const std::string& name : EngineRegistry::Global().Names()) {
    const bool point_only = IsPointOnlyEngine(name);
    const Dataset& r = point_only ? points_r : rects_r;
    JoinResult& oracle = point_only ? point_oracle : rect_oracle;

    for (const std::size_t threads : {1u, 2u, 8u}) {
      EngineConfig config;
      config.num_threads = threads;
      config.num_partitions = 16;  // small stripes stress dedup at test scale
      auto run = RunJoin(name, r, rects_s, config);
      ASSERT_TRUE(run.ok()) << name << " threads=" << threads << ": "
                            << run.status().ToString();
      EXPECT_TRUE(JoinResult::SameMultiset(oracle, run->result))
          << name << " threads=" << threads << " density=" << density.label
          << ": expected " << oracle.size() << " pairs, got "
          << run->result.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, EngineOracleTest,
    ::testing::Values(DensityCase{"Sparse", 4000.0, 4.0},
                      DensityCase{"Medium", 1000.0, 10.0},
                      DensityCase{"Dense", 300.0, 20.0}),
    [](const ::testing::TestParamInfo<DensityCase>& info) {
      return std::string(info.param.label);
    });

// Empty inputs and single-element datasets must be handled by every engine
// -- no crashes, no spurious pairs, and the one qualifying pair found.
TEST(EngineOracleEdgeCases, EmptyAndSingleElementInputs) {
  const Dataset empty;
  const Dataset one_rect("one", {Box(10, 10, 20, 20)});
  const Dataset touching("touch", {Box(20, 20, 30, 30)});  // shares a corner
  const Dataset disjoint("far", {Box(100, 100, 101, 101)});
  const Dataset one_point("pt", {Box(15, 15, 15, 15)});

  for (const std::string& name : EngineRegistry::Global().Names()) {
    const bool point_only = IsPointOnlyEngine(name);
    const Dataset& single_r = point_only ? one_point : one_rect;

    // Empty on either (or both) sides joins to the empty set.
    for (const auto& [r, s] : std::vector<std::pair<const Dataset*, const Dataset*>>{
             {&empty, &one_rect}, {&single_r, &empty}, {&empty, &empty}}) {
      auto run = RunJoin(name, *r, *s);
      ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
      EXPECT_EQ(run->result.size(), 0u) << name;
    }

    // Single overlapping pair: exactly one result, ids (0, 0).
    {
      auto run = RunJoin(name, single_r, one_rect);
      ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
      ASSERT_EQ(run->result.size(), 1u) << name;
      EXPECT_EQ(run->result.pairs()[0], (ResultPair{0, 0})) << name;
    }

    // Corner-touching rectangles intersect under closed-boundary semantics.
    if (!point_only) {
      auto run = RunJoin(name, one_rect, touching);
      ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
      EXPECT_EQ(run->result.size(), 1u) << name;
    }

    // Disjoint single elements: nothing.
    {
      auto run = RunJoin(name, single_r, disjoint);
      ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
      EXPECT_EQ(run->result.size(), 0u) << name;
    }
  }
}

// The warm half of the oracle: every engine's cached-plan path
// (PrepareJoin -> a fresh instance's ExecutePrepared, which is exactly what
// a DatasetRegistry cache hit runs) must reproduce the cold Plan+Execute
// multiset -- and keep reproducing it on repeat executions of the one
// shared plan. This is the proof that warm serving changes latency, never
// answers.
TEST(EngineOracleWarm, PreparedPlansMatchColdRunsForEveryEngine) {
  const uint64_t scale = 400;
  const Dataset rects_r = testutil::Uniform(scale, 81, 1000.0, 10.0);
  const Dataset rects_s = testutil::Skewed(scale, 82, 1000.0);
  const Dataset points_r = testutil::UniformPoints(scale, 83, 1000.0);

  for (const std::string& name : EngineRegistry::Global().Names()) {
    const bool point_only = IsPointOnlyEngine(name);
    const Dataset& r = point_only ? points_r : rects_r;

    for (const std::size_t threads : {1u, 4u}) {
      EngineConfig config;
      config.num_threads = threads;
      config.num_partitions = 16;
      auto cold = RunJoin(name, r, rects_s, config);
      ASSERT_TRUE(cold.ok()) << name << " threads=" << threads << ": "
                             << cold.status().ToString();

      auto plan =
          PrepareJoin(name, BorrowDataset(r), BorrowDataset(rects_s), config);
      ASSERT_TRUE(plan.ok()) << name << " threads=" << threads << ": "
                             << plan.status().ToString();
      for (int round = 0; round < 2; ++round) {
        auto warm = RunPreparedJoin(**plan, config);
        ASSERT_TRUE(warm.ok()) << name << " threads=" << threads << ": "
                               << warm.status().ToString();
        EXPECT_TRUE(JoinResult::SameMultiset(cold->result, warm->result))
            << name << " threads=" << threads << " round=" << round
            << ": cold " << cold->result.size() << " pairs, warm "
            << warm->result.size();
      }
    }
  }
}

}  // namespace
}  // namespace swiftspatial
