// Cross-algorithm equivalence property test: every join implementation in
// the library -- CPU algorithms, system-style baselines, and the simulated
// accelerator in both modes -- must produce the identical result multiset on
// the same inputs, across dataset shapes and sizes. This is the library's
// strongest integration invariant.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/engine_baselines.h"
#include "join/nested_loop.h"
#include "join/parallel_sync_traversal.h"
#include "join/pbsm.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

enum class Shape { kUniform, kSkewed, kMixed };

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kUniform:
      return "Uniform";
    case Shape::kSkewed:
      return "Skewed";
    case Shape::kMixed:
      return "Mixed";
  }
  return "?";
}

class JoinEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Shape, int>> {
 protected:
  void SetUp() override {
    const auto [shape, scale] = GetParam();
    switch (shape) {
      case Shape::kUniform:
        r_ = testutil::Uniform(scale, 1000 + scale);
        s_ = testutil::Uniform(scale, 2000 + scale);
        break;
      case Shape::kSkewed:
        r_ = testutil::Skewed(scale, 3000 + scale);
        s_ = testutil::Skewed(scale, 4000 + scale);
        break;
      case Shape::kMixed:
        r_ = testutil::UniformPoints(scale, 5000 + scale);
        s_ = testutil::Skewed(scale, 6000 + scale);
        break;
    }
    expected_ = BruteForceJoin(r_, s_);
  }

  void Check(JoinResult got, const std::string& label) {
    EXPECT_TRUE(JoinResult::SameMultiset(expected_, got))
        << label << " diverges: expected " << expected_.size() << " pairs, got "
        << got.size();
  }

  Dataset r_, s_;
  JoinResult expected_;
};

TEST_P(JoinEquivalenceTest, AllAlgorithmsAgree) {
  BulkLoadOptions bl;
  bl.max_entries = 8;
  const PackedRTree rt = StrBulkLoad(r_, bl);
  const PackedRTree st = StrBulkLoad(s_, bl);

  Check(SyncTraversalDfs(rt, st), "SyncTraversalDfs");
  Check(SyncTraversalBfs(rt, st), "SyncTraversalBfs");

  ParallelSyncTraversalOptions pst;
  pst.num_threads = 2;
  Check(ParallelSyncTraversal(rt, st, pst), "ParallelSyncTraversal");

  PbsmOptions pbsm;
  pbsm.num_partitions = 32;
  pbsm.num_threads = 2;
  Check(PbsmSpatialJoin(r_, s_, pbsm), "PbsmSpatialJoin");

  Check(InterpretedEngineJoin(r_, s_, {}), "InterpretedEngineJoin");

  BigDataFrameworkOptions bdf;
  bdf.num_partitions = 16;
  Check(BigDataFrameworkJoin(r_, s_, bdf), "BigDataFrameworkJoin");

  // Hilbert-loaded trees must agree with STR-loaded ones.
  BulkLoadOptions hil;
  hil.max_entries = 16;
  Check(SyncTraversalDfs(HilbertBulkLoad(r_, hil), HilbertBulkLoad(s_, hil)),
        "Hilbert trees");

  // Simulated accelerator, both control flows.
  hw::AcceleratorConfig acfg;
  acfg.num_join_units = 4;
  hw::Accelerator acc(acfg);
  JoinResult acc_sync;
  acc.RunSyncTraversal(rt, st, &acc_sync);
  Check(std::move(acc_sync), "Accelerator sync traversal");

  HierarchicalPartitionOptions hp;
  hp.tile_cap = 8;
  JoinResult acc_pbsm;
  acc.RunPbsm(r_, s_, PartitionHierarchical(r_, s_, hp), &acc_pbsm);
  Check(std::move(acc_pbsm), "Accelerator PBSM");
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScales, JoinEquivalenceTest,
    ::testing::Combine(::testing::Values(Shape::kUniform, Shape::kSkewed,
                                         Shape::kMixed),
                       ::testing::Values(64, 512, 1500)),
    [](const ::testing::TestParamInfo<JoinEquivalenceTest::ParamType>& info) {
      return ShapeName(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace swiftspatial
