// Accelerator-engine adapter tests: registration, functional equivalence
// with the oracle, the Plan-phase transfer accounting, the device report,
// and the streaming Execute whose batches must concatenate to exactly the
// collected result. (The cross-algorithm equivalence oracle additionally
// covers all three engines because they are registered.)
#include "join/accel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(AccelEngine, AllThreeRegistered) {
  const std::vector<std::string> names = EngineRegistry::Global().Names();
  for (const char* expected :
       {kAccelBfsEngine, kAccelPbsmEngine, kAccelPbsmMultiEngine}) {
    EXPECT_EQ(std::count(names.begin(), names.end(), expected), 1)
        << "missing accelerator engine: " << expected;
    EXPECT_TRUE(IsAccelEngine(expected));
  }
  EXPECT_FALSE(IsAccelEngine(kPartitionedEngine));
}

TEST(AccelEngine, MakeAccelEngineRejectsNonAccelNames) {
  auto engine = MakeAccelEngine(kNestedLoopEngine, {});
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(AccelEngine, MatchesNestedLoopThroughRegistry) {
  const Dataset r = testutil::Uniform(300, 501);
  const Dataset s = testutil::Skewed(300, 502);
  JoinResult expected = BruteForceJoin(r, s);
  for (const char* name :
       {kAccelBfsEngine, kAccelPbsmEngine, kAccelPbsmMultiEngine}) {
    EngineConfig config;
    config.accel_join_units = 4;
    auto run = RunJoin(name, r, s, config);
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    EXPECT_TRUE(JoinResult::SameMultiset(expected, run->result)) << name;
    EXPECT_GT(run->stats.predicate_evaluations, 0u) << name;
  }
}

TEST(AccelEngine, ReportAndPlanAccounting) {
  const Dataset r = testutil::Uniform(400, 503);
  const Dataset s = testutil::Uniform(400, 504);
  for (const char* name : {kAccelBfsEngine, kAccelPbsmEngine}) {
    EngineConfig config;
    config.accel_join_units = 4;
    auto engine = MakeAccelEngine(name, config);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Plan(r, s).ok()) << name;
    // Plan already knows what the host must ship.
    EXPECT_GT((*engine)->planned_bytes_to_device(), 0u) << name;

    JoinResult out;
    JoinStats stats;
    ASSERT_TRUE((*engine)->Execute(&out, &stats).ok()) << name;
    const hw::AcceleratorReport& report = (*engine)->last_report();
    EXPECT_EQ(report.bytes_to_device, (*engine)->planned_bytes_to_device())
        << name << ": Plan-time transfer accounting must match the device "
        << "image the run actually shipped";
    EXPECT_EQ(report.num_results, out.size()) << name;
    EXPECT_GT(report.kernel_cycles, 0u) << name;
    EXPECT_GT(report.total_seconds, 0.0) << name;
    EXPECT_EQ(report.bytes_from_device, out.size() * sizeof(ResultPair))
        << name;
  }
}

TEST(AccelEngine, MultiDeviceShardsAcrossDevices) {
  // Uniform data spans all four quadrants of the 2x2 forced grid.
  const Dataset r = testutil::Uniform(500, 505);
  const Dataset s = testutil::Uniform(500, 506);
  EngineConfig config;
  config.accel_join_units = 4;
  auto engine = MakeAccelEngine(kAccelPbsmMultiEngine, config);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Plan(r, s).ok());
  JoinResult out;
  ASSERT_TRUE((*engine)->Execute(&out, nullptr).ok());

  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, out));
  const hw::AcceleratorReport& report = (*engine)->last_report();
  EXPECT_EQ(report.num_results, out.size());
  // Aggregated over >1 shard: summed transfers exceed the largest shard's
  // in-use footprint, and concurrent kernels overlap (max, not sum).
  EXPECT_GT(report.bytes_to_device, report.device_bytes_used);
}

TEST(AccelEngine, ExecuteStreamingConcatenatesToExecuteResult) {
  const Dataset r = testutil::Uniform(400, 507, /*map=*/500.0,
                                      /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(400, 508, /*map=*/500.0,
                                      /*max_edge=*/15.0);
  for (const char* name :
       {kAccelBfsEngine, kAccelPbsmEngine, kAccelPbsmMultiEngine}) {
    EngineConfig config;
    config.accel_join_units = 4;
    auto engine = MakeAccelEngine(name, config);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Plan(r, s).ok()) << name;

    JoinResult collected;
    ASSERT_TRUE((*engine)->Execute(&collected, nullptr).ok()) << name;

    JoinResult streamed;
    std::size_t batches = 0;
    Status st = (*engine)->ExecuteStreaming(
        [&](std::vector<ResultPair> batch) {
          EXPECT_FALSE(batch.empty()) << name;
          ++batches;
          auto& pairs = streamed.mutable_pairs();
          pairs.insert(pairs.end(), batch.begin(), batch.end());
        },
        nullptr);
    ASSERT_TRUE(st.ok()) << name << ": " << st.ToString();
    EXPECT_GT(batches, 1u) << name << ": expected multiple write-unit "
                           << "flushes at this result cardinality";
    EXPECT_TRUE(JoinResult::SameMultiset(collected, streamed)) << name;
  }
}

TEST(AccelEngine, ConfigValidationAtPlan) {
  const Dataset d = testutil::Uniform(20, 509);
  {
    EngineConfig config;
    config.accel_tile_cap = 0;
    auto run = RunJoin(kAccelPbsmEngine, d, d, config);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
  {
    EngineConfig config;
    config.node_capacity = 1;
    auto run = RunJoin(kAccelBfsEngine, d, d, config);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
  {
    EngineConfig config;
    config.accel_join_units = -1;
    auto run = RunJoin(kAccelBfsEngine, d, d, config);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
  {
    EngineConfig config;
    config.accel_device_memory_bytes = 0;
    auto run = RunJoin(kAccelPbsmMultiEngine, d, d, config);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AccelEngine, ExecuteStreamingRequiresSinkAndPlan) {
  const Dataset d = testutil::Uniform(20, 510);
  auto engine = MakeAccelEngine(kAccelPbsmEngine, {});
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->ExecuteStreaming([](std::vector<ResultPair>) {},
                                        nullptr)
                .code(),
            StatusCode::kInternal);  // before Plan
  ASSERT_TRUE((*engine)->Plan(d, d).ok());
  EXPECT_EQ((*engine)->ExecuteStreaming(AccelBatchSink(), nullptr).code(),
            StatusCode::kInvalidArgument);  // null sink
}

}  // namespace
}  // namespace swiftspatial
