#include "join/predicates.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(EvaluatePredicate, SemanticsOnKnownBoxes) {
  const Box outer(0, 0, 10, 10);
  const Box inner(2, 2, 4, 4);
  const Box crossing(8, 8, 12, 12);
  const Box away(20, 20, 21, 21);

  EXPECT_TRUE(EvaluatePredicate(SpatialPredicate::kIntersects, outer, inner));
  EXPECT_TRUE(
      EvaluatePredicate(SpatialPredicate::kIntersects, outer, crossing));
  EXPECT_FALSE(EvaluatePredicate(SpatialPredicate::kIntersects, outer, away));

  EXPECT_TRUE(EvaluatePredicate(SpatialPredicate::kContains, outer, inner));
  EXPECT_FALSE(EvaluatePredicate(SpatialPredicate::kContains, outer, crossing));
  EXPECT_FALSE(EvaluatePredicate(SpatialPredicate::kContains, inner, outer));

  EXPECT_TRUE(EvaluatePredicate(SpatialPredicate::kWithin, inner, outer));
  EXPECT_FALSE(EvaluatePredicate(SpatialPredicate::kWithin, outer, inner));
}

TEST(EvaluatePredicate, ContainsAndWithinAreMirrors) {
  Rng rng(500);
  for (int trial = 0; trial < 500; ++trial) {
    const Coord ax = static_cast<Coord>(rng.Uniform(0, 80));
    const Coord ay = static_cast<Coord>(rng.Uniform(0, 80));
    const Box a(ax, ay, ax + static_cast<Coord>(rng.Uniform(1, 40)),
                ay + static_cast<Coord>(rng.Uniform(1, 40)));
    const Coord bx = static_cast<Coord>(rng.Uniform(0, 80));
    const Coord by = static_cast<Coord>(rng.Uniform(0, 80));
    const Box b(bx, by, bx + static_cast<Coord>(rng.Uniform(1, 40)),
                by + static_cast<Coord>(rng.Uniform(1, 40)));
    EXPECT_EQ(EvaluatePredicate(SpatialPredicate::kContains, a, b),
              EvaluatePredicate(SpatialPredicate::kWithin, b, a));
    // Containment implies intersection.
    if (EvaluatePredicate(SpatialPredicate::kContains, a, b)) {
      EXPECT_TRUE(EvaluatePredicate(SpatialPredicate::kIntersects, a, b));
    }
  }
}

class PredicateJoinTest : public ::testing::TestWithParam<SpatialPredicate> {};

TEST_P(PredicateJoinTest, IndexJoinMatchesBruteForce) {
  const SpatialPredicate pred = GetParam();
  // Mixed sizes so containment actually occurs.
  const Dataset r = testutil::Uniform(600, 501, 500.0, /*max_edge=*/40.0);
  const Dataset s = testutil::Uniform(600, 502, 500.0, /*max_edge=*/8.0);
  JoinResult got = PredicateJoin(r, s, pred);
  JoinResult expected = BruteForcePredicateJoin(r, s, pred);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
      << SpatialPredicateToString(pred);
}

INSTANTIATE_TEST_SUITE_P(AllPredicates, PredicateJoinTest,
                         ::testing::Values(SpatialPredicate::kIntersects,
                                           SpatialPredicate::kContains,
                                           SpatialPredicate::kWithin),
                         [](const auto& info) {
                           return SpatialPredicateToString(info.param);
                         });

TEST(PredicateJoin, ContainsIsSubsetOfIntersects) {
  const Dataset r = testutil::Uniform(400, 503, 300.0, /*max_edge=*/30.0);
  const Dataset s = testutil::Uniform(400, 504, 300.0, /*max_edge=*/5.0);
  JoinResult contains = PredicateJoin(r, s, SpatialPredicate::kContains);
  JoinResult intersects = PredicateJoin(r, s, SpatialPredicate::kIntersects);
  EXPECT_LT(contains.size(), intersects.size());
  contains.Sort();
  intersects.Sort();
  for (const ResultPair& p : contains.pairs()) {
    EXPECT_TRUE(std::binary_search(intersects.pairs().begin(),
                                   intersects.pairs().end(), p));
  }
}

TEST(PredicateJoin, PointWithinPolygonMbr) {
  // The paper's point-in-polygon query as a within-join.
  const Dataset points = testutil::UniformPoints(800, 505, 400.0);
  const Dataset polys = testutil::Uniform(300, 506, 400.0, /*max_edge=*/25.0);
  JoinResult got = PredicateJoin(points, polys, SpatialPredicate::kWithin);
  JoinResult expected =
      BruteForcePredicateJoin(points, polys, SpatialPredicate::kWithin);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
  // For points, within == intersects at the MBR level.
  JoinResult via_intersect =
      PredicateJoin(points, polys, SpatialPredicate::kIntersects);
  EXPECT_TRUE(JoinResult::SameMultiset(got, via_intersect));
}

TEST(PredicateJoin, EmptyInputs) {
  const Dataset none("none", {});
  const Dataset some = testutil::Uniform(10, 507);
  EXPECT_TRUE(PredicateJoin(none, some, SpatialPredicate::kContains).empty());
  EXPECT_TRUE(PredicateJoin(some, none, SpatialPredicate::kWithin).empty());
}

}  // namespace
}  // namespace swiftspatial
