// Regression suite for the batched MBR filter kernel: its comparison
// semantics must be bit-identical to geometry::Intersects -- closed
// boundaries (touching edges and corners intersect), zero-area boxes, and
// IEEE behaviour on NaN/infinite coordinates. The kernel is diffed against
// the scalar predicate on adversarial and randomized inputs so the
// cross-engine equivalence oracle (which compares whole join results) cannot
// be silently weakened by a kernel that drifts together with an engine.
#include "join/simd_filter.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

constexpr Coord kInf = std::numeric_limits<Coord>::infinity();
constexpr Coord kNaN = std::numeric_limits<Coord>::quiet_NaN();

bool KernelBit(const Box& probe, const Box& candidate) {
  const BoxBlock block = BoxBlock::FromBoxes({candidate});
  uint64_t mask = ~uint64_t{0};  // pre-polluted: the kernel must overwrite
  FilterBoxBlock(probe, block, &mask);
  EXPECT_TRUE(mask == 0 || mask == 1) << "tail bits must be zero";
  return mask & 1;
}

// Every pair from a hostile coordinate alphabet: shared edges, shared
// corners, zero-area boxes, containment, and non-finite coordinates. The
// kernel must agree with the scalar predicate on all of them, in both
// probe/candidate orders.
TEST(SimdFilter, AgreesWithIntersectsOnAdversarialBoxes) {
  const std::vector<Box> boxes = {
      Box(0, 0, 5, 5),
      Box(5, 0, 10, 5),       // shares the x=5 edge with the first
      Box(5, 5, 10, 10),      // shares only the (5,5) corner
      Box(0, 5, 5, 10),       // shares the y=5 edge
      Box(5, 5, 5, 5),        // zero-area box on the shared corner
      Box(2, 2, 3, 3),        // contained
      Box(-1, -1, 0, 0),      // touches at the origin corner
      Box(6, 6, 7, 7),        // disjoint from the first
      Box(0, 0, 0, 10),       // zero-width vertical line
      Box(0, 5, 10, 5),       // zero-height horizontal line
      Box(5.001f, 5, 10, 10),  // one ULP-ish past touching
      Box(kNaN, 0, 5, 5),     // NaN min_x: matches nothing
      Box(0, 0, kNaN, 5),     // NaN max_x
      Box(-kInf, -kInf, kInf, kInf),  // the whole plane
      Box(kInf, kInf, kInf, kInf),    // point at infinity
      Box(0, 0, -1, -1),      // inverted box (never valid, still defined)
  };
  for (const Box& probe : boxes) {
    for (const Box& candidate : boxes) {
      EXPECT_EQ(KernelBit(probe, candidate), Intersects(probe, candidate))
          << "probe=" << probe.ToString()
          << " candidate=" << candidate.ToString();
    }
  }
}

// Randomized sweep at a block size that exercises the vector body and the
// tail: bit i of the mask must equal Intersects(probe, candidate_i) for
// every candidate, and every bit beyond the block size must stay zero.
TEST(SimdFilter, MaskMatchesScalarPredicateOnRandomBlocks) {
  Rng rng(12345);
  // Sizes straddle every code-path boundary: the AVX2 8-lane step, the
  // scalar fallback's 64-candidate pack blocks, and the per-bit tail.
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 127u, 128u,
                              129u, 200u, 513u}) {
    std::vector<Box> boxes;
    boxes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
      const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
      boxes.push_back(Box(x, y, x + static_cast<Coord>(rng.Uniform(0, 10)),
                          y + static_cast<Coord>(rng.Uniform(0, 10))));
    }
    const BoxBlock block = BoxBlock::FromBoxes(boxes);
    std::vector<uint64_t> mask(FilterMaskWords(n), ~uint64_t{0});
    for (int p = 0; p < 32; ++p) {
      const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
      const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
      const Box probe(x, y, x + static_cast<Coord>(rng.Uniform(0, 20)),
                      y + static_cast<Coord>(rng.Uniform(0, 20)));
      FilterBoxBlock(probe, block, mask.data());
      for (std::size_t i = 0; i < n; ++i) {
        const bool bit = (mask[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(bit, Intersects(probe, boxes[i]))
            << "n=" << n << " candidate " << i;
      }
      // Tail bits past n stay zero so popcounts over words are exact.
      for (std::size_t i = n; i < mask.size() * 64; ++i) {
        EXPECT_EQ((mask[i >> 6] >> (i & 63)) & 1, 0u) << "tail bit " << i;
      }
    }
  }
}

// The probe-blocked kernel must agree bit-for-bit with the per-probe
// kernel (and hence with the scalar predicate) for every probe slot, across
// probe counts straddling its quad/tail boundary and candidate counts
// straddling every vector-body boundary.
TEST(SimdFilter, ProbeBlockMatchesPerProbeKernel) {
  Rng rng(54321);
  for (const std::size_t np : {1u, 2u, 3u, 4u, 5u, 8u, 15u, 16u, 17u}) {
    for (const std::size_t n : {0u, 1u, 7u, 8u, 63u, 64u, 65u, 130u}) {
      std::vector<Box> candidates;
      candidates.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
        const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
        candidates.push_back(
            Box(x, y, x + static_cast<Coord>(rng.Uniform(0, 10)),
                y + static_cast<Coord>(rng.Uniform(0, 10))));
      }
      std::vector<Box> probes;
      probes.reserve(np);
      for (std::size_t p = 0; p < np; ++p) {
        const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
        const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
        probes.push_back(
            Box(x, y, x + static_cast<Coord>(rng.Uniform(0, 20)),
                y + static_cast<Coord>(rng.Uniform(0, 20))));
      }
      const BoxBlock block = BoxBlock::FromBoxes(candidates);
      const BoxBlock probe_block = BoxBlock::FromBoxes(probes);
      const std::size_t words = FilterMaskWords(n);
      // Pre-polluted: the probe-blocked kernel must overwrite every word.
      std::vector<uint64_t> blocked(np * words, ~uint64_t{0});
      FilterSoAProbeBlock(probe_block.min_x(), probe_block.min_y(),
                          probe_block.max_x(), probe_block.max_y(), np,
                          block.min_x(), block.min_y(), block.max_x(),
                          block.max_y(), n, blocked.data());
      std::vector<uint64_t> single(words);
      for (std::size_t p = 0; p < np; ++p) {
        FilterBoxBlock(probes[p], block, single.data());
        for (std::size_t w = 0; w < words; ++w) {
          EXPECT_EQ(blocked[p * words + w], single[w])
              << "np=" << np << " n=" << n << " probe " << p << " word "
              << w;
        }
      }
    }
  }
}

// Non-finite probe coordinates through the probe-blocked path: NaN matches
// nothing in every slot of a quad, exactly as the per-probe kernel.
TEST(SimdFilter, ProbeBlockNaNProbesMatchNothing) {
  const std::vector<Box> candidates = {Box(0, 0, 100, 100),
                                       Box(-kInf, -kInf, kInf, kInf)};
  const std::vector<Box> probes = {Box(1, 1, 2, 2), Box(kNaN, 1, 2, 2),
                                   Box(1, 1, 2, kNaN), Box(3, 3, 4, 4)};
  const BoxBlock block = BoxBlock::FromBoxes(candidates);
  const BoxBlock probe_block = BoxBlock::FromBoxes(probes);
  const std::size_t words = FilterMaskWords(candidates.size());
  std::vector<uint64_t> masks(probes.size() * words, ~uint64_t{0});
  FilterSoAProbeBlock(probe_block.min_x(), probe_block.min_y(),
                      probe_block.max_x(), probe_block.max_y(),
                      probes.size(), block.min_x(), block.min_y(),
                      block.max_x(), block.max_y(), candidates.size(),
                      masks.data());
  for (std::size_t p = 0; p < probes.size(); ++p) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const bool bit = (masks[p * words + (i >> 6)] >> (i & 63)) & 1;
      EXPECT_EQ(bit, Intersects(probes[p], candidates[i]))
          << "probe " << p << " candidate " << i;
    }
  }
}

TEST(SimdFilter, BackendIsReported) {
  const std::string backend = SimdFilterBackend();
  EXPECT_TRUE(backend == "avx2" || backend == "scalar") << backend;
#if defined(__AVX2__)
  EXPECT_EQ(backend, "avx2");
#else
  EXPECT_EQ(backend, "scalar");
#endif
}

// The tile join built on the kernel must agree with the scalar nested-loop
// tile join, with and without a dedup tile, including on degenerate data.
TEST(SimdFilter, TileJoinMatchesNestedLoopTileJoin) {
  const Dataset r = testutil::Uniform(300, 77, /*map=*/100.0, /*max_edge=*/15.0);
  const Dataset s = testutil::Skewed(300, 78, /*map=*/100.0);
  std::vector<ObjectId> r_ids, s_ids;
  for (std::size_t i = 0; i < r.size(); ++i) {
    r_ids.push_back(static_cast<ObjectId>(i));
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    s_ids.push_back(static_cast<ObjectId>(i));
  }

  const Box tile(0, 0, 50, 50);  // a dedup tile cutting through the data
  for (const Box* dedup : {static_cast<const Box*>(nullptr), &tile}) {
    JoinResult scalar_result, simd_result;
    JoinStats scalar_stats, simd_stats;
    NestedLoopTileJoin(r, s, r_ids, s_ids, dedup, &scalar_result,
                       &scalar_stats);
    SimdTileJoin(r, s, r_ids, s_ids, dedup, &simd_result, &simd_stats);
    EXPECT_TRUE(JoinResult::SameMultiset(scalar_result, simd_result))
        << (dedup ? "with" : "without") << " dedup tile: " << scalar_result.size()
        << " vs " << simd_result.size() << " pairs";
    EXPECT_EQ(scalar_stats.predicate_evaluations,
              simd_stats.predicate_evaluations);
    EXPECT_EQ(scalar_stats.tasks, simd_stats.tasks);
  }
}

TEST(SimdFilter, TileJoinHandlesEmptySides) {
  const Dataset r = testutil::Uniform(16, 5);
  const Dataset s = testutil::Uniform(16, 6);
  const std::vector<ObjectId> none;
  std::vector<ObjectId> all;
  for (std::size_t i = 0; i < r.size(); ++i) {
    all.push_back(static_cast<ObjectId>(i));
  }
  JoinResult out;
  SimdTileJoin(r, s, none, all, nullptr, &out);
  EXPECT_EQ(out.size(), 0u);
  SimdTileJoin(r, s, all, none, nullptr, &out);
  EXPECT_EQ(out.size(), 0u);
}

}  // namespace
}  // namespace swiftspatial
