#include "join/pbsm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

class PbsmConfigTest
    : public ::testing::TestWithParam<
          std::tuple<int, Axis, TileJoin, std::size_t>> {};

TEST_P(PbsmConfigTest, MatchesBruteForce) {
  const auto [partitions, axis, tile_join, threads] = GetParam();
  const Dataset r = testutil::Uniform(700, 90, 1000.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(700, 91, 1000.0, /*max_edge=*/20.0);

  PbsmOptions opt;
  opt.num_partitions = partitions;
  opt.axis = axis;
  opt.tile_join = tile_join;
  opt.num_threads = threads;
  JoinResult got = PbsmSpatialJoin(r, s, opt);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PbsmConfigTest,
    ::testing::Combine(::testing::Values(1, 4, 64, 512),
                       ::testing::Values(Axis::kX, Axis::kY),
                       ::testing::Values(TileJoin::kPlaneSweep,
                                         TileJoin::kNestedLoop,
                                         TileJoin::kSimd),
                       ::testing::Values<std::size_t>(1, 4)));

TEST(Pbsm, NoDuplicatesDespiteMultiAssignment) {
  // Large objects overlap many stripes; the reference-point rule must keep
  // each result pair unique.
  const Dataset r = testutil::Uniform(300, 92, 500.0, /*max_edge=*/80.0);
  const Dataset s = testutil::Uniform(300, 93, 500.0, /*max_edge=*/80.0);
  PbsmOptions opt;
  opt.num_partitions = 32;
  JoinResult got = PbsmSpatialJoin(r, s, opt);
  got.Sort();
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_FALSE(got.pairs()[i] == got.pairs()[i - 1])
        << "duplicate pair (" << got.pairs()[i].r << "," << got.pairs()[i].s
        << ")";
  }
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(Pbsm, SkewedDataCorrect) {
  const Dataset r = testutil::Skewed(1500, 94);
  const Dataset s = testutil::Skewed(1500, 95);
  PbsmOptions opt;
  opt.num_partitions = 100;
  opt.num_threads = 2;
  JoinResult got = PbsmSpatialJoin(r, s, opt);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(Pbsm, SeparatePhasesEqualCombined) {
  const Dataset r = testutil::Uniform(400, 96);
  const Dataset s = testutil::Uniform(400, 97);
  PbsmOptions opt;
  opt.num_partitions = 16;
  const StripePartition partition = PbsmPartition(r, s, opt);
  JoinResult two_phase = PbsmJoin(r, s, partition, opt);
  JoinResult combined = PbsmSpatialJoin(r, s, opt);
  EXPECT_TRUE(JoinResult::SameMultiset(two_phase, combined));
}

TEST(Pbsm, MorePartitionsFewerChecksPerStripe) {
  const Dataset r = testutil::Uniform(2000, 98, 2000.0, /*max_edge=*/2.0);
  const Dataset s = testutil::Uniform(2000, 99, 2000.0, /*max_edge=*/2.0);
  JoinStats few, many;
  PbsmOptions opt;
  opt.tile_join = TileJoin::kNestedLoop;
  opt.num_partitions = 2;
  PbsmSpatialJoin(r, s, opt, &few);
  opt.num_partitions = 256;
  PbsmSpatialJoin(r, s, opt, &many);
  // Finer partitioning prunes far more of the cross product.
  EXPECT_LT(many.predicate_evaluations, few.predicate_evaluations / 4);
}

TEST(Pbsm, ObjectsOnTheGlobalMaxBoundary) {
  // Regression: clamped OSM-like points sit exactly on the map's max edge;
  // their reference points coincide with the extent max, which the
  // half-open tile rule would silently drop without the closed-boundary
  // fix (CloseLastTile).
  OsmLikeConfig pc;
  pc.map.map_size = 500.0;
  pc.count = 2000;
  pc.num_clusters = 4;
  pc.cluster_radius_frac = 0.3;  // wide clusters: many clamped outliers
  pc.seed = 200;
  const Dataset points = GenerateOsmLikePoints(pc);
  OsmLikeConfig bc = pc;
  bc.seed = 201;
  const Dataset polys = GenerateOsmLike(bc);

  // Confirm the scenario is actually present.
  const Box extent = [&] {
    Box e = points.Extent();
    e.Expand(polys.Extent());
    return e;
  }();
  bool boundary_point = false;
  for (const Box& b : points.boxes()) {
    if (b.min_x == extent.max_x || b.min_y == extent.max_y) {
      boundary_point = true;
      break;
    }
  }
  ASSERT_TRUE(boundary_point) << "fixture no longer exercises the boundary";

  PbsmOptions opt;
  opt.num_partitions = 64;
  JoinResult got = PbsmSpatialJoin(points, polys, opt);
  JoinResult expected = BruteForceJoin(points, polys);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(Pbsm, ObjectsOnFloatRoundedStripeEdges) {
  // Regression: stripe boundaries over a [0,1] extent at partition counts
  // that are not powers of two are not float-representable; the rounded
  // stripe edge can sit one ULP off the double boundary the assignment
  // index arithmetic uses. Objects exactly on a rounded edge must still
  // land in every stripe the reference-point rule can claim their pairs
  // for, at any partition count and on both axes.
  for (const Axis axis : {Axis::kX, Axis::kY}) {
    for (const int partitions : {7, 10, 13}) {
      std::vector<Box> r_boxes = {Box(0, 0, 0, 0), Box(1, 1, 1, 1)};
      std::vector<Box> s_boxes = r_boxes;
      // Mirror PartitionStripes' edge arithmetic: lo + p * width in double,
      // rounded to Coord.
      const double width = 1.0 / partitions;
      for (int p = 1; p < partitions; ++p) {
        const Coord edge = static_cast<Coord>(p * width);
        const Coord other = 0.5f;
        const Box pt = axis == Axis::kX ? Box(edge, other, edge, other)
                                        : Box(other, edge, other, edge);
        r_boxes.push_back(pt);
        s_boxes.push_back(pt);
      }
      const Dataset r("stripe_r", std::move(r_boxes));
      const Dataset s("stripe_s", std::move(s_boxes));
      JoinResult expected = BruteForceJoin(r, s);
      ASSERT_GE(expected.size(), static_cast<std::size_t>(partitions + 1));

      PbsmOptions opt;
      opt.num_partitions = partitions;
      opt.axis = axis;
      JoinResult got = PbsmSpatialJoin(r, s, opt);
      EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
          << partitions << " stripes on axis "
          << (axis == Axis::kX ? "x" : "y") << ": expected " << expected.size()
          << " pairs, got " << got.size();
    }
  }
}

TEST(Pbsm, CollidedFloatStripeEdgesFarFromOrigin) {
  // Above 2^24 the float lattice steps by 2, so 512 stripes over an 8-wide
  // extent collapse runs of ~64 consecutive stripe edges onto the same
  // representable float. The stripe owning a collapsed-edge reference point
  // then sits far from the double-arithmetic index estimate -- a fixed ±1
  // assignment window drops those pairs; only snapping along the rounded
  // edges (as UniformGrid::TileRange does) finds it.
  const Coord base = 16777216.0f;  // 2^24
  for (const Axis axis : {Axis::kX, Axis::kY}) {
    std::vector<Box> pts;
    for (int i = 0; i <= 4; ++i) {
      const Coord big = base + static_cast<Coord>(2 * i);
      const Coord small = static_cast<Coord>(i);
      const Box pt = axis == Axis::kX ? Box(big, small, big, small)
                                      : Box(small, big, small, big);
      pts.push_back(pt);
    }
    const Dataset r("ulp_r", std::vector<Box>(pts));
    const Dataset s("ulp_s", std::move(pts));
    JoinResult expected = BruteForceJoin(r, s);
    ASSERT_EQ(expected.size(), 5u);

    PbsmOptions opt;
    opt.num_partitions = 512;
    opt.axis = axis;
    JoinResult got = PbsmSpatialJoin(r, s, opt);
    EXPECT_TRUE(JoinResult::SameMultiset(expected, got))
        << "axis " << (axis == Axis::kX ? "x" : "y") << ": expected "
        << expected.size() << " pairs, got " << got.size();
  }
}

TEST(Pbsm, ZeroWidthExtentAlongPartitionAxis) {
  // All data on one vertical line, partitioned along x: every stripe
  // collapses onto the line and assignment must agree with the (single)
  // claiming stripe.
  std::vector<Box> line;
  for (int i = 0; i < 6; ++i) {
    line.push_back(Box(3, static_cast<Coord>(i), 3, static_cast<Coord>(i)));
  }
  const Dataset r("line_r", std::vector<Box>(line));
  const Dataset s("line_s", std::move(line));
  JoinResult expected = BruteForceJoin(r, s);
  ASSERT_EQ(expected.size(), 6u);
  PbsmOptions opt;
  opt.num_partitions = 8;
  opt.axis = Axis::kX;
  JoinResult got = PbsmSpatialJoin(r, s, opt);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(TileJoinToString, Names) {
  EXPECT_STREQ(TileJoinToString(TileJoin::kPlaneSweep), "plane-sweep");
  EXPECT_STREQ(TileJoinToString(TileJoin::kNestedLoop), "nested-loop");
  EXPECT_STREQ(TileJoinToString(TileJoin::kSimd), "simd");
}

}  // namespace
}  // namespace swiftspatial
