#include "join/nested_loop.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(BruteForceJoin, TinyKnownCase) {
  Dataset r("r", {Box(0, 0, 2, 2), Box(5, 5, 6, 6)});
  Dataset s("s", {Box(1, 1, 3, 3), Box(10, 10, 11, 11)});
  JoinResult out = BruteForceJoin(r, s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.pairs()[0], (ResultPair{0, 0}));
}

TEST(BruteForceJoin, CountsPredicates) {
  Dataset r("r", {Box(0, 0, 1, 1), Box(2, 2, 3, 3), Box(4, 4, 5, 5)});
  Dataset s("s", {Box(0, 0, 9, 9), Box(20, 20, 21, 21)});
  JoinStats stats;
  JoinResult out = BruteForceJoin(r, s, &stats);
  EXPECT_EQ(stats.predicate_evaluations, 6u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(BruteForceJoin, EmptyInputs) {
  Dataset empty("e", {});
  Dataset one("o", {Box(0, 0, 1, 1)});
  EXPECT_TRUE(BruteForceJoin(empty, one).empty());
  EXPECT_TRUE(BruteForceJoin(one, empty).empty());
  EXPECT_TRUE(BruteForceJoin(empty, empty).empty());
}

TEST(NestedLoopTileJoin, SubsetJoin) {
  const Dataset r = testutil::Uniform(100, 30);
  const Dataset s = testutil::Uniform(100, 31);
  // Join only the first half of r against the second half of s.
  std::vector<ObjectId> r_ids, s_ids;
  for (ObjectId i = 0; i < 50; ++i) r_ids.push_back(i);
  for (ObjectId i = 50; i < 100; ++i) s_ids.push_back(i);

  JoinResult got;
  NestedLoopTileJoin(r, s, r_ids, s_ids, nullptr, &got);

  JoinResult expected;
  for (ObjectId i : r_ids) {
    for (ObjectId j : s_ids) {
      if (Intersects(r.box(static_cast<std::size_t>(i)),
                     s.box(static_cast<std::size_t>(j)))) {
        expected.Add(i, j);
      }
    }
  }
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(NestedLoopTileJoin, DedupTileFiltersByReferencePoint) {
  // Two rectangles intersecting around (5, 5).
  Dataset r("r", {Box(4, 4, 6, 6)});
  Dataset s("s", {Box(5, 5, 7, 7)});
  const std::vector<ObjectId> ids = {0};

  // Intersection is [5,6]x[5,6]; reference point (5, 5).
  Box owning_tile(0, 0, 5.5, 5.5);
  Box other_tile(5.5, 0, 10, 5.5);
  JoinResult in_owner, in_other;
  NestedLoopTileJoin(r, s, ids, ids, &owning_tile, &in_owner);
  NestedLoopTileJoin(r, s, ids, ids, &other_tile, &in_other);
  EXPECT_EQ(in_owner.size(), 1u);
  EXPECT_TRUE(in_other.empty());
}

TEST(JoinResult, MergeAndSort) {
  JoinResult a, b;
  a.Add(3, 1);
  a.Add(1, 2);
  b.Add(2, 0);
  a.Merge(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  a.Sort();
  EXPECT_EQ(a.pairs()[0], (ResultPair{1, 2}));
  EXPECT_EQ(a.pairs()[2], (ResultPair{3, 1}));
}

TEST(JoinResult, SameMultisetDetectsDifferences) {
  JoinResult a, b;
  a.Add(1, 1);
  a.Add(1, 1);
  b.Add(1, 1);
  EXPECT_FALSE(JoinResult::SameMultiset(a, b));  // multiplicity matters
  b.Add(1, 1);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

}  // namespace
}  // namespace swiftspatial
