#include "join/sync_traversal.h"

#include <gtest/gtest.h>

#include "join/nested_loop.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

PackedRTree Tree(const Dataset& d, int max_entries = 16) {
  BulkLoadOptions opt;
  opt.max_entries = max_entries;
  return StrBulkLoad(d, opt);
}

TEST(SyncTraversalDfs, MatchesBruteForce) {
  const Dataset r = testutil::Uniform(800, 60);
  const Dataset s = testutil::Uniform(700, 61);
  JoinResult expected = BruteForceJoin(r, s);
  JoinResult got = SyncTraversalDfs(Tree(r), Tree(s));
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(SyncTraversalBfs, MatchesDfs) {
  const Dataset r = testutil::Skewed(900, 62);
  const Dataset s = testutil::Uniform(900, 63);
  const PackedRTree rt = Tree(r), st = Tree(s);
  JoinResult dfs = SyncTraversalDfs(rt, st);
  JoinResult bfs = SyncTraversalBfs(rt, st);
  EXPECT_TRUE(JoinResult::SameMultiset(dfs, bfs));
}

TEST(SyncTraversal, DifferentNodeSizesAgree) {
  const Dataset r = testutil::Uniform(600, 64);
  const Dataset s = testutil::Uniform(600, 65);
  JoinResult base = SyncTraversalDfs(Tree(r, 4), Tree(s, 4));
  for (int m : {8, 16, 32}) {
    JoinResult other = SyncTraversalDfs(Tree(r, m), Tree(s, m));
    EXPECT_TRUE(JoinResult::SameMultiset(base, other)) << "node size " << m;
  }
}

TEST(SyncTraversal, MixedNodeSizesBetweenTrees) {
  const Dataset r = testutil::Uniform(500, 66);
  const Dataset s = testutil::Uniform(500, 67);
  JoinResult expected = BruteForceJoin(r, s);
  JoinResult got = SyncTraversalDfs(Tree(r, 4), Tree(s, 64));
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(SyncTraversal, DifferentHeights) {
  const Dataset big = testutil::Uniform(2000, 68);
  const Dataset small = testutil::Uniform(10, 69, 1000.0, /*max_edge=*/100.0);
  const PackedRTree bt = Tree(big, 8), st = Tree(small, 8);
  ASSERT_GT(bt.height(), st.height());
  JoinResult expected = BruteForceJoin(big, small);
  JoinResult dfs = SyncTraversalDfs(bt, st);
  JoinResult bfs = SyncTraversalBfs(bt, st);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, dfs));
  EXPECT_TRUE(JoinResult::SameMultiset(expected, bfs));
  // Swapped argument order also works (directory on the left).
  JoinResult swapped = SyncTraversalDfs(st, bt);
  EXPECT_EQ(swapped.size(), expected.size());
}

TEST(SyncTraversal, DynamicTreeViaPack) {
  const Dataset r = testutil::Uniform(700, 70);
  const Dataset s = testutil::Uniform(700, 71);
  RTree dynamic_r = RTree::BuildByInsertion(r);
  RTree dynamic_s = RTree::BuildByInsertion(s);
  JoinResult expected = BruteForceJoin(r, s);
  JoinResult got = SyncTraversalDfs(dynamic_r.Pack(), dynamic_s.Pack());
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(SyncTraversalBfs, LevelSizesTraceShape) {
  const Dataset r = testutil::Uniform(2000, 72);
  const Dataset s = testutil::Uniform(2000, 73);
  std::vector<std::size_t> levels;
  SyncTraversalBfs(Tree(r), Tree(s), nullptr, &levels);
  ASSERT_GE(levels.size(), 2u);
  EXPECT_EQ(levels[0], 1u);  // root pair
  // Task counts grow as the traversal descends (fan-out).
  EXPECT_GT(levels.back(), levels[0]);
}

TEST(SyncTraversal, StatsCounters) {
  const Dataset r = testutil::Uniform(400, 74);
  const Dataset s = testutil::Uniform(400, 75);
  JoinStats dfs_stats, bfs_stats;
  SyncTraversalDfs(Tree(r), Tree(s), &dfs_stats);
  SyncTraversalBfs(Tree(r), Tree(s), &bfs_stats);
  // DFS and BFS visit exactly the same node pairs, just in different order.
  EXPECT_EQ(dfs_stats.tasks, bfs_stats.tasks);
  EXPECT_EQ(dfs_stats.predicate_evaluations, bfs_stats.predicate_evaluations);
  EXPECT_EQ(dfs_stats.intermediate_pairs, bfs_stats.intermediate_pairs);
  EXPECT_GT(dfs_stats.tasks, 0u);
  // Every visited non-root task was once an intermediate pair.
  EXPECT_EQ(dfs_stats.intermediate_pairs + 1, dfs_stats.tasks);
}

TEST(SyncTraversal, PointPolygonJoin) {
  const Dataset points = testutil::UniformPoints(1000, 76);
  const Dataset polys = testutil::Uniform(800, 77, 1000.0, /*max_edge=*/25.0);
  JoinResult expected = BruteForceJoin(points, polys);
  JoinResult got = SyncTraversalDfs(Tree(points), Tree(polys));
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

}  // namespace
}  // namespace swiftspatial
