#include "faas/service.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace swiftspatial::faas {
namespace {

JoinRequest Req(double arrival, uint64_t parallel, uint64_t serial = 0) {
  JoinRequest r;
  r.arrival_seconds = arrival;
  r.parallel_unit_cycles = parallel;
  r.serial_cycles = serial;
  return r;
}

// The engine-run -> request bridge: profiling a real join must produce the
// documented cycle model (predicates -> parallel unit-cycles, tasks ->
// serial dispatch on top of the launch floor). This is the path that sizes
// analytic what-ifs from measured runs.
TEST(SpatialJoinService, ProfileRequestSizesFromEngineRun) {
  const Dataset r = testutil::Uniform(300, 11);
  const Dataset s = testutil::Uniform(300, 12);
  EngineConfig config;
  config.node_capacity = 16;
  auto run = RunJoin(kSyncTraversalEngine, r, s, config);
  ASSERT_TRUE(run.ok());

  auto req = ProfileRequest(kSyncTraversalEngine, r, s,
                            /*arrival_seconds=*/1.5, config);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_DOUBLE_EQ(req->arrival_seconds, 1.5);
  EXPECT_EQ(req->parallel_unit_cycles, run->stats.predicate_evaluations);
  EXPECT_EQ(req->serial_cycles, 100000 + run->stats.tasks * 4);
  EXPECT_GT(req->parallel_unit_cycles, 0u);

  // Unknown engines propagate the registry error.
  EXPECT_FALSE(ProfileRequest("no_such_engine", r, s, 0.0).ok());
}

TEST(SpatialJoinService, SingleRequestServiceTime) {
  FaasConfig cfg;
  cfg.total_units = 16;
  cfg.num_kernels = 1;
  cfg.clock_hz = 200e6;
  SpatialJoinService svc(cfg);
  EXPECT_EQ(svc.units_per_kernel(), 16);

  // 16e6 unit-cycles on 16 units = 1e6 cycles = 5 ms at 200 MHz.
  auto out = svc.Process({Req(0.0, 16000000)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].latency_seconds, 5e-3, 1e-9);
  EXPECT_DOUBLE_EQ(out[0].wait_seconds, 0.0);
}

TEST(SpatialJoinService, SerialPortionNotParallelized) {
  FaasConfig cfg;
  cfg.total_units = 16;
  SpatialJoinService svc(cfg);
  auto out = svc.Process({Req(0.0, 0, 200000000)});  // 1 s of serial work
  EXPECT_NEAR(out[0].latency_seconds, 1.0, 1e-9);
}

TEST(SpatialJoinService, SingleKernelQueuesFcfs) {
  FaasConfig cfg;
  cfg.total_units = 16;
  cfg.num_kernels = 1;
  SpatialJoinService svc(cfg);
  // Two simultaneous 5 ms requests: the second waits for the first.
  auto out = svc.Process({Req(0.0, 16000000), Req(0.0, 16000000)});
  EXPECT_NEAR(out[0].latency_seconds, 5e-3, 1e-9);
  EXPECT_NEAR(out[1].wait_seconds, 5e-3, 1e-9);
  EXPECT_NEAR(out[1].latency_seconds, 10e-3, 1e-9);
}

TEST(SpatialJoinService, MultiKernelImprovesFairness) {
  // One long query followed by many short ones (§4.2's monopolisation
  // concern).
  std::vector<JoinRequest> reqs = {Req(0.0, 320000000)};  // 100 ms on 16 units
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(Req(0.001 * (i + 1), 1600000));  // 0.5 ms each on 16 units
  }

  FaasConfig one;
  one.total_units = 16;
  one.num_kernels = 1;
  FaasConfig four;
  four.total_units = 16;
  four.num_kernels = 4;

  const auto single = SpatialJoinService::Summarize(
      SpatialJoinService(one).Process(reqs));
  const auto multi = SpatialJoinService::Summarize(
      SpatialJoinService(four).Process(reqs));

  // The single large kernel forces short queries to wait behind the long
  // one; multiple kernels cut the worst-case wait dramatically.
  EXPECT_GT(single.max_wait_seconds, 10 * multi.max_wait_seconds);
  // But the long query itself runs slower on a quarter of the units.
  EXPECT_LT(single.makespan_seconds, multi.makespan_seconds + 0.3);
}

TEST(SpatialJoinService, KernelCountDividesUnits) {
  FaasConfig cfg;
  cfg.total_units = 16;
  cfg.num_kernels = 4;
  SpatialJoinService svc(cfg);
  EXPECT_EQ(svc.units_per_kernel(), 4);
}

TEST(SpatialJoinService, ArrivalOrderRespected) {
  FaasConfig cfg;
  cfg.total_units = 16;
  cfg.num_kernels = 2;
  SpatialJoinService svc(cfg);
  // Given out of order; processed by arrival.
  auto out = svc.Process({Req(0.5, 1600000), Req(0.0, 1600000)});
  EXPECT_LT(out[0].start_seconds, out[1].start_seconds);
}

TEST(SpatialJoinService, SummarizeStatistics) {
  std::vector<RequestOutcome> outcomes(100);
  for (int i = 0; i < 100; ++i) {
    outcomes[i].latency_seconds = (i + 1) * 0.01;
    outcomes[i].finish_seconds = (i + 1) * 0.01;
    outcomes[i].wait_seconds = 0.0;
  }
  const FaasMetrics m = SpatialJoinService::Summarize(outcomes);
  EXPECT_NEAR(m.mean_latency_seconds, 0.505, 1e-9);
  EXPECT_NEAR(m.p99_latency_seconds, 0.99, 1e-9);
  EXPECT_NEAR(m.makespan_seconds, 1.0, 1e-9);
}

}  // namespace
}  // namespace swiftspatial::faas
